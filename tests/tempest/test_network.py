"""Tests for the network model: latency, bandwidth, bulk costs, delivery."""

import pytest

from repro.sim import Engine
from repro.tempest import Message, Network
from repro.util import MachineConfig, SimulationError


@pytest.fixture
def net():
    eng = Engine()
    cfg = MachineConfig(n_nodes=4, msg_latency=100, per_byte_cost=0.5, bulk_msg_overhead=40)
    n = Network(eng, cfg)
    delivered = []
    n.attach(lambda msg, t: delivered.append((msg, t)))
    return eng, n, delivered


class TestFlightTime:
    def test_control_message(self, net):
        _, n, _ = net
        assert n.flight_time(Message("GET_RO", 0, 1)) == 100

    def test_payload_adds_bandwidth_term(self, net):
        _, n, _ = net
        assert n.flight_time(Message("DATA_RO", 0, 1, payload_bytes=32)) == 116

    def test_bulk_adds_startup(self, net):
        _, n, _ = net
        msg = Message("PRESEND_RO", 0, 1, payload_bytes=64, bulk=True)
        assert n.flight_time(msg) == 100 + 32 + 40


class TestDelivery:
    def test_delivers_at_flight_time(self, net):
        eng, n, delivered = net
        n.send(Message("GET_RO", 0, 1), at=50.0)
        eng.run()
        assert len(delivered) == 1
        msg, t = delivered[0]
        assert t == 150.0
        assert msg.send_time == 50.0

    def test_future_send_allowed(self, net):
        eng, n, delivered = net
        # processors run ahead of the event clock; sends from the future are OK
        n.send(Message("GET_RO", 0, 1), at=1e6)
        eng.run()
        assert delivered[0][1] == 1e6 + 100

    def test_counts_traffic(self, net):
        eng, n, _ = net
        n.send(Message("DATA_RO", 0, 1, payload_bytes=32), at=0.0)
        n.send(Message("GET_RO", 1, 0), at=0.0)
        eng.run()
        assert n.messages_delivered == 2
        assert n.bytes_delivered == 32

    def test_self_send_rejected(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 2, 2), at=0.0)

    def test_bad_endpoint_rejected(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 0, 9), at=0.0)

    def test_unattached_network_rejects(self):
        n = Network(Engine(), MachineConfig())
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 0, 1), at=0.0)

    def test_fifo_per_timestamp(self, net):
        eng, n, delivered = net
        for i in range(5):
            m = Message("GET_RO", 0, 1)
            m.info["i"] = i
            n.send(m, at=0.0)
        eng.run()
        assert [m.info["i"] for m, _ in delivered] == list(range(5))


class TestSendEdgeCases:
    def test_self_send_error_carries_context(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError) as e:
            n.send(Message("GET_RO", 2, 2), at=0.0)
        assert e.value.node == 2
        assert "GET_RO" in (e.value.message_repr or "")

    def test_bad_endpoint_error_names_message(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError) as e:
            n.send(Message("GET_RO", 0, 9), at=0.0)
        assert "GET_RO" in (e.value.message_repr or "")

    def test_negative_src_rejected(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", -1, 1), at=0.0)

    def test_msg_ids_are_per_instance(self):
        cfg = MachineConfig(n_nodes=2)
        eng = Engine()
        a, b = Network(eng, cfg), Network(eng, cfg)
        a.attach(lambda m, t: None)
        b.attach(lambda m, t: None)
        m1 = Message("GET_RO", 0, 1)
        m2 = Message("GET_RO", 0, 1)
        a.send(m1, at=0.0)
        b.send(m2, at=0.0)
        # independent networks assign independent id streams
        assert m1.msg_id == m2.msg_id == 0

    def test_rejected_send_assigns_no_id(self, net):
        _, n, _ = net
        bad = Message("GET_RO", 2, 2)
        with pytest.raises(SimulationError):
            n.send(bad, at=0.0)
        assert bad.msg_id == -1
        ok = Message("GET_RO", 0, 1)
        n.send(ok, at=0.0)
        assert ok.msg_id == 0

    def test_injector_can_drop(self, net):
        eng, n, delivered = net
        class Drop:
            def message_deliveries(self, msg):
                return []
        n.injector = Drop()
        n.send(Message("GET_RO", 0, 1), at=0.0)
        eng.run()
        assert delivered == []
        assert n.messages_delivered == 0

    def test_injector_can_duplicate_and_delay(self, net):
        eng, n, delivered = net
        class Dup:
            def message_deliveries(self, msg):
                return [0.0, 250.0]
        n.injector = Dup()
        n.send(Message("GET_RO", 0, 1), at=0.0)
        eng.run()
        assert [t for _, t in delivered] == [100.0, 350.0]
        assert n.messages_delivered == 2


class TestNodeOccupancy:
    def test_handler_fifo(self):
        from repro.tempest import Node

        node = Node(3)
        assert node.service_handler(arrival=100.0, cost=50.0) == 150.0
        # second message arrives while busy: queued behind
        assert node.service_handler(arrival=120.0, cost=50.0) == 200.0
        # idle gap: starts at arrival
        assert node.service_handler(arrival=500.0, cost=10.0) == 510.0
