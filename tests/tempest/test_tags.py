"""Tests for fine-grain access-control tags."""

import pytest

from repro.tempest import AccessTag, TagTable
from repro.util import SimulationError


class TestAccessTag:
    def test_invalid_permits_nothing(self):
        assert not AccessTag.INVALID.permits("r")
        assert not AccessTag.INVALID.permits("w")

    def test_read_only_permits_reads(self):
        assert AccessTag.READ_ONLY.permits("r")
        assert not AccessTag.READ_ONLY.permits("w")

    def test_read_write_permits_both(self):
        assert AccessTag.READ_WRITE.permits("r")
        assert AccessTag.READ_WRITE.permits("w")

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            AccessTag.READ_WRITE.permits("x")


class TestTagTable:
    def test_default_invalid(self):
        t = TagTable(0)
        assert t.get(42) is AccessTag.INVALID
        assert not t.permits(42, "r")

    def test_set_get(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_ONLY)
        assert t.get(1) is AccessTag.READ_ONLY
        assert t.permits(1, "r")
        assert not t.permits(1, "w")

    def test_set_invalid_removes(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_WRITE)
        t.set(1, AccessTag.INVALID)
        assert len(t) == 0

    def test_downgrade_only_affects_rw(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_WRITE)
        t.set(2, AccessTag.READ_ONLY)
        t.downgrade(1)
        t.downgrade(2)
        t.downgrade(3)  # absent: no-op
        assert t.get(1) is AccessTag.READ_ONLY
        assert t.get(2) is AccessTag.READ_ONLY
        assert t.get(3) is AccessTag.INVALID

    def test_invalidate(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_WRITE)
        t.invalidate(1)
        t.invalidate(99)  # idempotent on absent blocks
        assert t.get(1) is AccessTag.INVALID

    def test_blocks_with_tag(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_ONLY)
        t.set(2, AccessTag.READ_WRITE)
        t.set(3, AccessTag.READ_ONLY)
        assert sorted(t.blocks_with_tag(AccessTag.READ_ONLY)) == [1, 3]

    def test_clear(self):
        t = TagTable(0)
        t.set(1, AccessTag.READ_ONLY)
        t.clear()
        assert len(t) == 0
