"""Tests for session recording, persistence, and cross-protocol replay."""

import pytest

from repro.core import make_machine
from repro.tempest.machine import PhaseTrace
from repro.tempest.tracefile import (
    load_session,
    record_regions,
    replay_session,
    restore_regions,
    save_session,
)
from repro.util import MachineConfig, SimulationError

from tests.helpers import small_machine


def record_water(n_nodes=4):
    """Run Water once with a recorder attached; return (events, regions)."""
    from repro.apps import water

    prog = water.build(n=16, iterations=2)
    m = make_machine(MachineConfig(n_nodes=n_nodes, page_size=512), "stache")
    m.recorder = events = []
    prog.run(m, optimized=True)
    return events, record_regions(m), m.finish()


class TestRecording:
    def test_recorder_captures_events(self):
        events, _, _ = record_water()
        kinds = [e[0] for e in events]
        assert "phase" in kinds
        assert "begin_group" in kinds
        assert "end_group" in kinds
        # groups are balanced
        assert kinds.count("begin_group") == kinds.count("end_group")

    def test_recorder_off_by_default(self):
        m, b = small_machine()
        assert m.recorder is None


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        events, regions, _ = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        loaded_events, loaded_regions = load_session(path)
        assert len(loaded_events) == len(events)
        assert loaded_regions == regions
        for orig, loaded in zip(events, loaded_events):
            assert orig[0] == loaded[0]
            if orig[0] == "phase":
                assert loaded[1].ops == [
                    [tuple(op) for op in ops] for ops in orig[1].ops
                ]

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"version": 99}\n')
        with pytest.raises(SimulationError):
            load_session(path)


class TestReplay:
    def test_replay_reproduces_original_run(self, tmp_path):
        events, regions, original = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        m = make_machine(MachineConfig(n_nodes=4, page_size=512), "stache")
        stats = replay_session(load_session(path), m)
        assert stats.wall_time == original.wall_time
        assert stats.misses == original.misses

    def test_replay_under_different_protocol(self, tmp_path):
        """One value pass, many protocols: the point of the facility."""
        events, regions, baseline = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        session = load_session(path)

        m_pred = make_machine(MachineConfig(n_nodes=4, page_size=512),
                              "predictive")
        pred = replay_session(session, m_pred)
        assert pred.misses < baseline.misses
        assert pred.wall_time != baseline.wall_time
        pred.check_conservation()

    def test_replay_node_count_mismatch(self):
        events, regions, _ = record_water(n_nodes=4)
        m = make_machine(MachineConfig(n_nodes=8, page_size=512), "stache")
        with pytest.raises(SimulationError):
            replay_session((events, regions), m)

    def test_restore_regions_sets_home_tags(self):
        cfg = MachineConfig(n_nodes=2, page_size=512)
        m = make_machine(cfg, "stache")
        restore_regions(m, [{"name": "x", "size": 1024, "homes": [0, 1]}])
        region = m.addr_space.region("x")
        first = m.addr_space.block_of(region.base)
        assert m.nodes[0].tags.permits(first, "w")
        blocks_per_page = 512 // 32
        assert m.nodes[1].tags.permits(first + blocks_per_page, "w")
