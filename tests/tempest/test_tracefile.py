"""Tests for session recording, persistence, and cross-protocol replay."""

import pytest

from repro.core import make_machine
from repro.tempest.machine import PhaseTrace
from repro.tempest.tracefile import (
    load_session,
    record_regions,
    replay_session,
    restore_regions,
    save_session,
)
from repro.util import MachineConfig, SimulationError

from tests.helpers import small_machine


def record_water(n_nodes=4):
    """Run Water once with a recorder attached; return (events, regions)."""
    from repro.apps import water

    prog = water.build(n=16, iterations=2)
    m = make_machine(MachineConfig(n_nodes=n_nodes, page_size=512), "stache")
    m.recorder = events = []
    prog.run(m, optimized=True)
    return events, record_regions(m), m.finish()


class TestRecording:
    def test_recorder_captures_events(self):
        events, _, _ = record_water()
        kinds = [e[0] for e in events]
        assert "phase" in kinds
        assert "begin_group" in kinds
        assert "end_group" in kinds
        # groups are balanced
        assert kinds.count("begin_group") == kinds.count("end_group")

    def test_recorder_off_by_default(self):
        m, b = small_machine()
        assert m.recorder is None


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        events, regions, _ = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        loaded_events, loaded_regions = load_session(path)
        assert len(loaded_events) == len(events)
        assert loaded_regions == regions
        for orig, loaded in zip(events, loaded_events):
            assert orig[0] == loaded[0]
            if orig[0] == "phase":
                assert loaded[1].ops == [
                    [tuple(op) for op in ops] for ops in orig[1].ops
                ]

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"version": 99}\n')
        with pytest.raises(SimulationError):
            load_session(path)


GOLDEN = __file__.rsplit("/", 1)[0] + "/data/golden.trace"

#: the session serialized in the checked-in golden file
GOLDEN_EVENTS = [
    ("begin_group", 1),
    ("phase", PhaseTrace("produce", [[("w", 4), ("c", 100), ("w", 5)],
                                     [("c", 50)]])),
    ("end_group",),
    ("begin_group", 1),
    ("phase", PhaseTrace("consume", [[("c", 10)],
                                     [("r", 4), ("r", 5)]])),
    ("end_group",),
]
GOLDEN_REGIONS = [{"name": "data", "size": 256, "homes": [0, 0]}]


class TestGoldenTrace:
    """The on-disk format is stable: write -> read -> re-write is identity,
    pinned against a checked-in golden file so format drift is loud."""

    def test_write_matches_golden(self, tmp_path):
        path = tmp_path / "fresh.trace"
        save_session(GOLDEN_EVENTS, path, regions=GOLDEN_REGIONS)
        with open(GOLDEN) as fh:
            assert path.read_text() == fh.read()

    def test_round_trip_is_byte_identical(self, tmp_path):
        events, regions = load_session(GOLDEN)
        rewritten = tmp_path / "rewritten.trace"
        save_session(events, rewritten, regions=regions)
        with open(GOLDEN, "rb") as fh:
            assert rewritten.read_bytes() == fh.read()

    def test_double_round_trip_is_stable(self, tmp_path):
        """Load -> save -> load -> save reaches a fixed point immediately."""
        first = tmp_path / "first.trace"
        events, regions = load_session(GOLDEN)
        save_session(events, first, regions=regions)
        second = tmp_path / "second.trace"
        events2, regions2 = load_session(first)
        save_session(events2, second, regions=regions2)
        assert first.read_bytes() == second.read_bytes()

    def test_golden_session_content(self):
        events, regions = load_session(GOLDEN)
        assert regions == GOLDEN_REGIONS
        assert [e[0] for e in events] == [e[0] for e in GOLDEN_EVENTS]
        produce = events[1][1]
        assert produce.name == "produce"
        assert produce.ops == [[("w", 4), ("c", 100), ("w", 5)], [("c", 50)]]

    def test_golden_replays_clean(self):
        """The golden session actually runs (and satisfies the invariant
        monitor) on a 2-node machine."""
        from repro.verify import InvariantMonitor

        cfg = MachineConfig(n_nodes=2, block_size=32, page_size=128)
        m = make_machine(cfg, "stache")
        monitor = InvariantMonitor().attach(m)
        stats = replay_session(load_session(GOLDEN), m)
        assert stats.misses > 0  # node 1's reads fault to node 0's home
        assert monitor.checks_run == 2


class TestReplay:
    def test_replay_reproduces_original_run(self, tmp_path):
        events, regions, original = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        m = make_machine(MachineConfig(n_nodes=4, page_size=512), "stache")
        stats = replay_session(load_session(path), m)
        assert stats.wall_time == original.wall_time
        assert stats.misses == original.misses

    def test_replay_under_different_protocol(self, tmp_path):
        """One value pass, many protocols: the point of the facility."""
        events, regions, baseline = record_water()
        path = tmp_path / "session.trace"
        save_session(events, path, regions)
        session = load_session(path)

        m_pred = make_machine(MachineConfig(n_nodes=4, page_size=512),
                              "predictive")
        pred = replay_session(session, m_pred)
        assert pred.misses < baseline.misses
        assert pred.wall_time != baseline.wall_time
        pred.check_conservation()

    def test_replay_node_count_mismatch(self):
        events, regions, _ = record_water(n_nodes=4)
        m = make_machine(MachineConfig(n_nodes=8, page_size=512), "stache")
        with pytest.raises(SimulationError):
            replay_session((events, regions), m)

    def test_restore_regions_sets_home_tags(self):
        cfg = MachineConfig(n_nodes=2, page_size=512)
        m = make_machine(cfg, "stache")
        restore_regions(m, [{"name": "x", "size": 1024, "homes": [0, 1]}])
        region = m.addr_space.region("x")
        first = m.addr_space.block_of(region.base)
        assert m.nodes[0].tags.permits(first, "w")
        blocks_per_page = 512 // 32
        assert m.nodes[1].tags.permits(first + blocks_per_page, "w")
