"""Tests for machine-level guards, bookkeeping, and per-phase statistics."""

import pytest

from repro.core import make_machine
from repro.tempest.machine import PhaseTrace
from repro.util import MachineConfig, SimulationError

from tests.helpers import idle_ops, run_one_phase, small_machine


class TestGroupGuards:
    def test_begin_group_during_phase_impossible(self):
        # begin_group while a phase runs is guarded; simulate by flag
        m, b = small_machine("predictive")
        m._phase_running = True
        with pytest.raises(SimulationError):
            m.begin_group(1)
        m._phase_running = False

    def test_end_group_clears_directive(self):
        m, b = small_machine("predictive")
        m.begin_group(5)
        assert m.current_directive == 5
        m.end_group()
        assert m.current_directive is None

    def test_end_group_without_begin_is_noop(self):
        m, b = small_machine("predictive")
        m.end_group()  # must not raise

    def test_group_accessed_resets_per_group(self):
        m, b = small_machine("predictive")
        m.begin_group(1)
        run_one_phase(m, {1: [("r", b)]})
        assert m.was_accessed(1, b)
        m.end_group()
        m.begin_group(1)
        assert not m.was_accessed(1, b)
        m.end_group()


class TestPhaseStats:
    def test_per_phase_miss_deltas(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]}, "first")
        run_one_phase(m, {1: [("r", b)]}, "second")
        p1, p2 = m.stats.phases
        assert p1.misses == 1 and p1.hits == 0
        assert p2.misses == 0 and p2.hits == 1
        assert p1.hit_rate == 0.0 and p2.hit_rate == 1.0

    def test_phase_messages_counted(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]})
        assert m.stats.phases[0].messages >= 2  # request + data

    def test_phase_rows_render(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 10)]}, "compute-only")
        rows = m.stats.phase_rows()
        assert rows[0][0] == "compute-only"
        assert rows[0][1] > 0

    def test_phase_wall_times_are_contiguous(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 100)]})
        run_one_phase(m, {0: [("c", 100)]})
        p1, p2 = m.stats.phases
        assert p1.wall_end == p2.wall_start


class TestReplayGuards:
    def test_double_finish_is_stable(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 1)]})
        s1 = m.finish()
        s2 = m.finish()
        assert s1.wall_time == s2.wall_time

    def test_phase_with_no_ops_still_barriers(self):
        m, b = small_machine()
        t0 = m.clock
        m.run_phase(PhaseTrace("empty", idle_ops(m.config.n_nodes)))
        assert m.clock == t0 + m.config.barrier_latency

    def test_resume_guard_rejects_non_waiting(self):
        from repro.tempest.machine import ReplayProcessor

        m, b = small_machine()
        proc = ReplayProcessor(m, m.nodes[0], [], 0.0)
        with pytest.raises(SimulationError):
            proc.resume(1.0)


class TestNoteAccess:
    def test_write_recorded_in_phase_writes(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("w", b)]})
        # phase_writes cleared at phase start; check during next phase via
        # the recorded protocol state instead: the write hit home
        assert m.stats.local_hits == 1

    def test_reads_not_in_phase_writes(self):
        m, b = small_machine()
        m.phase_writes.clear()
        m.note_access(0, b, "r")
        assert (0, b) not in m.phase_writes
        m.note_access(0, b, "w")
        assert (0, b) in m.phase_writes
