"""Tests for the global address space, block math, and home policies."""

import pytest

from repro.tempest.addrspace import AddressSpace, block_partition, round_robin_pages
from repro.util import ConfigError, MachineConfig, SimulationError


@pytest.fixture
def space():
    return AddressSpace(MachineConfig(n_nodes=4, block_size=32, page_size=4096))


class TestAllocation:
    def test_regions_page_aligned(self, space):
        r1 = space.allocate("a", 100)
        r2 = space.allocate("b", 5000)
        assert r1.base % 4096 == 0
        assert r1.size == 4096
        assert r2.size == 8192
        assert r2.base == r1.end

    def test_address_zero_reserved(self, space):
        r = space.allocate("a", 10)
        assert r.base >= 4096

    def test_duplicate_name_rejected(self, space):
        space.allocate("a", 10)
        with pytest.raises(ConfigError):
            space.allocate("a", 10)

    def test_non_positive_size_rejected(self, space):
        with pytest.raises(ConfigError):
            space.allocate("a", 0)

    def test_lookup_by_name(self, space):
        r = space.allocate("grid", 128)
        assert space.region("grid") is r

    def test_find_region(self, space):
        r = space.allocate("a", 4096)
        assert space.find_region(r.base) is r
        assert space.find_region(r.end - 1) is r
        with pytest.raises(SimulationError):
            space.find_region(r.end)


class TestBlockMath:
    def test_block_of(self, space):
        assert space.block_of(0) == 0
        assert space.block_of(31) == 0
        assert space.block_of(32) == 1

    def test_block_addr_roundtrip(self, space):
        for b in [0, 1, 1000]:
            assert space.block_of(space.block_addr(b)) == b

    def test_blocks_of_range_single(self, space):
        assert list(space.blocks_of_range(0, 8)) == [0]

    def test_blocks_of_range_straddles(self, space):
        # 24 bytes starting at offset 20 crosses the 32-byte boundary
        assert list(space.blocks_of_range(20, 24)) == [0, 1]

    def test_blocks_of_range_exact_block(self, space):
        assert list(space.blocks_of_range(32, 32)) == [1]

    def test_blocks_of_range_empty_rejected(self, space):
        with pytest.raises(SimulationError):
            space.blocks_of_range(0, 0)


class TestHomePolicies:
    def test_round_robin(self):
        policy = round_robin_pages(4)
        assert [policy(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_block_partition_covers_all_nodes(self):
        policy = block_partition(n_pages=8, n_nodes=4)
        homes = [policy(p) for p in range(8)]
        assert homes == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_partition_clamps(self):
        policy = block_partition(n_pages=3, n_nodes=4)
        assert policy(10) == 3  # out-of-range pages clamp to the last node

    def test_home_of_block_uses_region_policy(self, space):
        r = space.allocate("a", 4 * 4096, home_policy=lambda p: p % 4)
        b0 = space.block_of(r.base)
        blocks_per_page = 4096 // 32
        assert space.home_of_block(b0) == 0
        assert space.home_of_block(b0 + blocks_per_page) == 1

    def test_home_cached_consistently(self, space):
        r = space.allocate("a", 4096, home_policy=lambda p: 2)
        b = space.block_of(r.base)
        assert space.home_of_block(b) == 2
        assert space.home_of_block(b) == 2

    def test_bad_home_rejected(self, space):
        r = space.allocate("a", 4096, home_policy=lambda p: 99)
        with pytest.raises(ConfigError):
            space.home_of_block(space.block_of(r.base))
