"""Tests for the FaultInjector: determinism, scripted lookup, bookkeeping."""

from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import FaultEvent
from repro.tempest.network import Message


def _msg(kind="GET_RO", src=0, dst=1, seq=0, resends=0):
    m = Message(kind, src, dst)
    m.seq = seq
    m.resends = resends
    return m


class TestDeterminism:
    def test_same_seed_same_history(self):
        decisions = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan(drop_rate=0.3, dup_rate=0.3, seed=42))
            decisions.append([
                tuple(inj.message_deliveries(_msg(seq=i))) for i in range(50)
            ])
        assert decisions[0] == decisions[1]

    def test_different_seed_different_history(self):
        runs = []
        for seed in (1, 2):
            inj = FaultInjector(FaultPlan(drop_rate=0.5, seed=seed))
            runs.append([
                tuple(inj.message_deliveries(_msg(seq=i))) for i in range(50)
            ])
        assert runs[0] != runs[1]

    def test_injected_events_are_replayable_keys(self):
        inj = FaultInjector(FaultPlan(drop_rate=0.4, seed=3))
        outcomes = [inj.message_deliveries(_msg(seq=i)) for i in range(40)]
        dropped = [i for i, out in enumerate(outcomes) if out == []]
        assert dropped, "rate 0.4 over 40 sends must drop something"
        # replay exactly the recorded events through a scripted injector
        replay = FaultInjector(FaultPlan(drop_rate=0.4, seed=3).as_scripted(
            inj.injected))
        replayed = [replay.message_deliveries(_msg(seq=i)) for i in range(40)]
        assert replayed == outcomes


class TestSemantics:
    def test_zero_rates_never_perturb(self):
        inj = FaultInjector(FaultPlan(seed=9))
        assert all(
            inj.message_deliveries(_msg(seq=i)) == [0.0] for i in range(20)
        )
        assert inj.injected == []

    def test_drop_returns_no_deliveries(self):
        inj = FaultInjector(FaultPlan(drop_rate=1.0))
        assert inj.message_deliveries(_msg()) == []
        assert inj.injected[0].action == "drop"

    def test_dup_returns_two_deliveries(self):
        inj = FaultInjector(FaultPlan(dup_rate=1.0, delay_cycles=100.0))
        assert inj.message_deliveries(_msg()) == [0.0, 100.0]

    def test_delay_returns_late_delivery(self):
        inj = FaultInjector(FaultPlan(delay_rate=1.0, delay_cycles=300.0))
        assert inj.message_deliveries(_msg()) == [300.0]

    def test_ack_faults_off_shields_tack(self):
        from repro.faults.transport import TACK

        inj = FaultInjector(FaultPlan(drop_rate=1.0, ack_faults=False))
        assert inj.message_deliveries(_msg(kind=TACK)) == [0.0]
        assert inj.message_deliveries(_msg(kind="GET_RO")) == []

    def test_retransmissions_rolled_independently(self):
        # occurrence/resends are part of the key, so a scripted plan can hit
        # the first transmission and spare the retry
        ev = FaultEvent("drop", ("msg", "GET_RO", 0, 1, 0, 0, 0))
        inj = FaultInjector(FaultPlan(events=(ev,)))
        assert inj.message_deliveries(_msg(seq=0, resends=0)) == []
        assert inj.message_deliveries(_msg(seq=0, resends=1)) == [0.0]

    def test_last_fault_for_channel(self):
        inj = FaultInjector(FaultPlan(drop_rate=1.0))
        inj.message_deliveries(_msg(src=2, dst=0, seq=5))
        ev = inj.last_fault_for(2, 0, 5)
        assert ev is not None and ev.action == "drop"
        assert inj.last_fault_for(0, 2, 5) is None


class TestStallHook:
    def test_stall_hook_deterministic_per_node(self):
        plan = FaultPlan(stall_rate=0.5, stall_cycles=600.0, seed=11)
        a = FaultInjector(plan).stall_hook_for(0)
        b = FaultInjector(plan).stall_hook_for(0)
        assert [a() for _ in range(30)] == [b() for _ in range(30)]

    def test_scripted_stall_fires_at_exact_service(self):
        ev = FaultEvent("stall", ("stall", 1, 2), amount=500.0)
        hook = FaultInjector(FaultPlan(events=(ev,))).stall_hook_for(1)
        assert [hook() for _ in range(4)] == [0.0, 0.0, 500.0, 0.0]


class TestScheduleFaults:
    def test_scripted_schedule_fault(self):
        events = (FaultEvent("stale", ("sched", 7, 1)),
                  FaultEvent("corrupt", ("sched", 7, 3)))
        inj = FaultInjector(FaultPlan(events=events))
        assert [inj.schedule_fault(7) for _ in range(5)] == [
            None, "stale", None, "corrupt", None]

    def test_stochastic_schedule_fault_rates(self):
        inj = FaultInjector(FaultPlan(corrupt_rate=1.0))
        assert inj.schedule_fault(1) == "corrupt"
        inj = FaultInjector(FaultPlan(stale_rate=1.0))
        assert inj.schedule_fault(1) == "stale"
