"""Integration tests for the reliable transport on a real machine.

Each test runs a tiny workload under a *scripted* plan that hits one exact
transmission, then checks the transport healed it (retry, dedup, in-order
delivery) and left the machine quiescent — or, for the unrecoverable plan,
that it failed fast with structured context.
"""

import pytest

from repro.faults import FaultPlan, UNRECOVERABLE_PLAN
from repro.faults.plan import FaultEvent
from repro.tempest.machine import PhaseTrace
from repro.util import TransportTimeout
from repro.verify.monitor import InvariantMonitor

from tests.helpers import small_machine


def _read_phase(m, first, reader=1):
    """node ``reader`` reads the first block; everyone else idles."""
    ops = [[] for _ in range(len(m.nodes))]
    ops[reader] = [("r", first)]
    m.run_phase(PhaseTrace("p0", ops))


def _fault_free_stats(reader=1):
    m, first = small_machine("stache")
    _read_phase(m, first, reader)
    return m


class TestHealing:
    def test_dropped_request_is_retried_and_healed(self):
        baseline = _fault_free_stats()
        m, first = small_machine("stache")
        m.install_fault_plan(FaultPlan(events=(
            FaultEvent("drop", ("msg", "GET_RO", 1, 0, 0, 0, 0)),
        )))
        monitor = InvariantMonitor().attach(m)
        _read_phase(m, first)
        assert m.stats.transport_retries == 1
        assert m.stats.misses == baseline.stats.misses  # access completed
        assert m._transport.unacked == 0 and m._transport.held_back == 0
        assert monitor.checks_run == 1
        # healing costs time, never correctness
        assert m.clock > baseline.clock

    def test_duplicated_data_is_suppressed(self):
        m, first = small_machine("stache")
        m.install_fault_plan(FaultPlan(events=(
            FaultEvent("dup", ("msg", "DATA_RO", 0, 1, 0, 0, 0), amount=50.0),
        )))
        InvariantMonitor().attach(m)
        _read_phase(m, first)
        assert m.stats.duplicates_suppressed == 1
        assert m.stats.transport_retries == 0
        assert m.network.messages_delivered > 0

    def test_lost_ack_costs_retry_then_dedup(self):
        m, first = small_machine("stache")
        m.install_fault_plan(FaultPlan(events=(
            FaultEvent("drop", ("msg", "TACK", 0, 1, 0, 0, 0)),
        )))
        InvariantMonitor().attach(m)
        _read_phase(m, first)
        # the GET_RO was received but its ack died: the sender retried, the
        # receiver suppressed the second copy
        assert m.stats.transport_retries == 1
        assert m.stats.duplicates_suppressed == 1

    def test_delayed_message_keeps_fifo_order(self):
        # delay the GET_RO; a later GET_RW on the same channel must not
        # overtake it at the protocol layer
        m, first = small_machine("stache")
        m.install_fault_plan(FaultPlan(events=(
            FaultEvent("delay", ("msg", "GET_RO", 1, 0, 0, 0, 0),
                       amount=400.0),
        )))
        monitor = InvariantMonitor().attach(m)
        ops = [[] for _ in range(len(m.nodes))]
        ops[1] = [("r", first), ("w", first + 1)]
        m.run_phase(PhaseTrace("p0", ops))
        assert m.stats.misses == 2
        assert m._transport.held_back == 0
        assert monitor.checks_run == 1


class TestFailFast:
    def test_unrecoverable_plan_raises_structured_timeout(self):
        m, first = small_machine("stache")
        m.install_fault_plan(UNRECOVERABLE_PLAN)
        with pytest.raises(TransportTimeout) as e:
            _read_phase(m, first)
        err = e.value
        assert err.node is not None
        assert err.block is not None
        assert err.event is not None and err.event.action == "drop"
        assert "GET_RO" in (err.message_repr or "")
        assert m.stats.transport_timeouts == 1

    def test_budget_bounds_time_to_failure(self):
        m, first = small_machine("stache")
        m.install_fault_plan(UNRECOVERABLE_PLAN)
        with pytest.raises(TransportTimeout) as e:
            _read_phase(m, first)
        # fail-fast: within the budget plus one backoff period, not hours in
        assert e.value.time < 4 * UNRECOVERABLE_PLAN.timeout_budget


class TestFastPath:
    def test_zero_plan_installs_nothing(self):
        m, _ = small_machine("stache")
        m.install_fault_plan(FaultPlan())
        assert m._transport is None
        assert m.fault_injector is None
        assert m.network.injector is None

    def test_none_plan_installs_nothing(self):
        m, _ = small_machine("stache")
        m.install_fault_plan(None)
        assert m._transport is None

    def test_zero_plan_run_is_bit_identical(self):
        runs = []
        for plan in (None, FaultPlan()):
            m, first = small_machine("predictive")
            m.install_fault_plan(plan)
            m.begin_group(1)
            _read_phase(m, first)
            m.end_group()
            runs.append(m.finish().summary_rows())
        assert runs[0] == runs[1]

    def test_stall_only_plan_skips_transport(self):
        m, first = small_machine("stache")
        m.install_fault_plan(FaultPlan(stall_rate=1.0, stall_cycles=500.0))
        assert m._transport is None  # messages unperturbed
        assert all(node.stall_hook is not None for node in m.nodes)
        baseline = _fault_free_stats()
        _read_phase(m, first)
        assert m.clock > baseline.clock
