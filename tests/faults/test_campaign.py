"""Tests for fault campaigns and injection-history shrinking."""

from repro.faults import FaultPlan, run_campaign
from repro.faults.campaign import shrink_events
from repro.faults.plan import FaultEvent


def _ev(n):
    return FaultEvent("drop", ("msg", "GET_RO", 0, 1, n, 0, 0))


class TestShrinkEvents:
    def test_minimizes_to_known_core(self):
        events = [_ev(n) for n in range(12)]
        core = {events[3], events[9]}

        def fails(subset):
            return core <= set(subset)

        minimal, runs = shrink_events(fails, events)
        assert set(minimal) == core
        assert runs > 0

    def test_single_culprit(self):
        events = [_ev(n) for n in range(8)]

        def fails(subset):
            return events[5] in subset

        minimal, _ = shrink_events(fails, events)
        assert minimal == [events[5]]

    def test_irreproducible_returns_none(self):
        minimal, runs = shrink_events(lambda s: False, [_ev(0), _ev(1)])
        assert minimal is None
        assert runs == 1  # one attempt at the full history, then gave up

    def test_empty_history_returns_none(self):
        assert shrink_events(lambda s: True, []) == (None, 0)

    def test_respects_run_budget(self):
        events = [_ev(n) for n in range(64)]

        def fails(subset):
            # pathological: only the full set reproduces
            return len(subset) == len(events)

        minimal, runs = shrink_events(fails, events, max_runs=10)
        assert runs <= 10
        assert set(minimal) == set(events)  # never returns a non-failing set

    def test_preserves_event_order(self):
        events = [_ev(n) for n in range(10)]
        keep = [events[2], events[7]]

        def fails(subset):
            return all(e in subset for e in keep)

        minimal, _ = shrink_events(fails, events)
        assert minimal == keep  # original relative order retained


class TestRunCampaign:
    def test_bundled_campaign_is_green(self):
        report = run_campaign(
            seeds=1, variants=1, protocols=("stache",), traces_dir=None
        )
        assert report.ok
        assert report.failures == []
        assert report.unrecoverable_ok is True
        assert report.workloads == 1
        # every bundled plan ran against the one workload, plus the
        # unrecoverable fail-fast probe
        assert report.runs == report.plans + 1
        assert "no coherence violations" in report.summary()

    def test_custom_plan_subset(self):
        plans = {"drops": FaultPlan(name="drops", drop_rate=0.2, seed=5)}
        report = run_campaign(
            plans=plans, seeds=1, protocols=("predictive",),
            traces_dir=None, check_unrecoverable=False,
        )
        assert report.ok
        assert report.plans == 1
        assert report.unrecoverable_ok is None

    def test_variants_multiply_runs(self):
        plans = {"drops": FaultPlan(name="drops", drop_rate=0.1, seed=5)}
        one = run_campaign(plans=plans, seeds=1, protocols=("stache",),
                           variants=1, traces_dir=None,
                           check_unrecoverable=False)
        three = run_campaign(plans=plans, seeds=1, protocols=("stache",),
                             variants=3, traces_dir=None,
                             check_unrecoverable=False)
        assert three.runs == 3 * one.runs

    def test_trace_workloads_included(self):
        report = run_campaign(
            plans={"dup": FaultPlan(name="dup", dup_rate=0.3, seed=2)},
            seeds=1, protocols=("stache",), traces_dir="examples/traces",
            check_unrecoverable=False,
        )
        assert report.ok
        assert report.workloads > 1  # the generated seed plus bundled traces


class TestFailureScripts:
    """A failing run must leave behind a ready-to-replay scripted plan,
    and --dump-scripts archives it as versioned JSON."""

    #: hopeless but *not* the probe plan: run through the normal campaign
    #: path so the failure machinery (scripting, shrinking, dumping) fires
    DOOMED = {"doomed": FaultPlan(name="doomed", drop_rate=1.0,
                                  timeout_budget=20_000.0, max_retries=2)}

    def test_failure_carries_scripted_plan(self):
        report = run_campaign(
            plans=dict(self.DOOMED), seeds=1, protocols=("stache",),
            traces_dir=None, check_unrecoverable=False,
        )
        assert not report.ok and report.failures
        fail = report.failures[0]
        assert fail.scripted_plan is not None
        assert fail.scripted_plan.scripted
        assert fail.scripted_plan.drop_rate == 0.0  # script only, no dice
        if fail.minimized_events is not None:
            assert list(fail.scripted_plan.events) == fail.minimized_events

    def test_dump_scripts_archives_replayable_json(self, tmp_path):
        from repro.faults import load_plan

        report = run_campaign(
            plans=dict(self.DOOMED), seeds=1, protocols=("stache",),
            traces_dir=None, check_unrecoverable=False,
            dump_scripts=tmp_path / "scripts",
        )
        assert report.failures
        dumped = sorted((tmp_path / "scripts").glob("*.json"))
        assert len(dumped) == len(report.failures)
        plan = load_plan(dumped[0])
        assert plan == report.failures[0].scripted_plan

    def test_green_campaign_dumps_nothing(self, tmp_path):
        report = run_campaign(
            plans={"dup": FaultPlan(name="dup", dup_rate=0.2, seed=1)},
            seeds=1, protocols=("stache",), traces_dir=None,
            check_unrecoverable=False, dump_scripts=tmp_path / "scripts",
        )
        assert report.ok
        assert not (tmp_path / "scripts").exists()
