"""Tests for crash-stop node failures: injection determinism, scripted
replay, coherence-state recovery, and differential identity with the
fault-free ground truth under every protocol."""

import pytest

from repro.faults import CRASH_PLANS, FaultPlan
from repro.verify.oracle import differential_check, run_workload
from repro.verify.workload import generate_workload

CRASH = CRASH_PLANS["crash"]
STORM = CRASH_PLANS["crash-storm"]
LOSSY = CRASH_PLANS["crash-lossy"]


def _crash_events(obs):
    return [ev for ev in obs.fault_events if ev.action == "crash"]


class TestCrashInjection:
    def test_same_seed_same_history(self):
        w = generate_workload(0)
        a = run_workload(w, "stache", fault_plan=CRASH.with_(seed=3))
        b = run_workload(w, "stache", fault_plan=CRASH.with_(seed=3))
        assert a.fault_events == b.fault_events
        assert a.stats.wall_time == b.stats.wall_time

    def test_different_seeds_eventually_differ(self):
        w = generate_workload(0)
        histories = {
            tuple(run_workload(w, "stache",
                               fault_plan=CRASH.with_(seed=s)).fault_events)
            for s in range(6)
        }
        assert len(histories) > 1

    def test_crashes_are_injected_across_seeds(self):
        w = generate_workload(0)
        total = 0
        for s in range(6):
            obs = run_workload(w, "stache", fault_plan=CRASH.with_(seed=s))
            crashes = _crash_events(obs)
            assert len(crashes) <= CRASH.max_crashes
            assert obs.stats.crashes == len(crashes)
            total += len(crashes)
        assert total > 0, "crash rate 0.15 over 6 seeds injected nothing"

    def test_scripted_replay_is_identical(self):
        w = generate_workload(0)
        seed = next(
            s for s in range(16)
            if _crash_events(run_workload(
                w, "stache", fault_plan=CRASH.with_(seed=s)))
        )
        live = run_workload(w, "stache", fault_plan=CRASH.with_(seed=seed))
        scripted_plan = CRASH.with_(seed=seed).as_scripted(live.fault_events)
        replay = run_workload(w, "stache", fault_plan=scripted_plan)
        assert replay.image == live.image
        assert replay.stats.wall_time == live.stats.wall_time
        assert replay.stats.crashes == live.stats.crashes
        assert replay.fault_events == live.fault_events

    def test_max_crashes_bounds_storm(self):
        w = generate_workload(0)
        for s in range(4):
            obs = run_workload(w, "stache", fault_plan=STORM.with_(seed=s))
            assert obs.stats.crashes <= STORM.max_crashes


class TestCrashRecovery:
    """Crashes cost time, never answers: every run must complete
    differentially identical to the fault-free ground truth, with the
    invariant monitor (including the dead-node-reference check) attached
    throughout — run_workload raises CoherenceViolation otherwise."""

    @pytest.mark.parametrize("seed", range(4))
    def test_recovery_is_differentially_clean(self, seed):
        w = generate_workload(seed)
        observed = {
            proto: run_workload(w, proto, fault_plan=CRASH.with_(seed=seed))
            for proto in w.protocols
        }
        differential_check(w, observed)

    @pytest.mark.parametrize("plan", [STORM, LOSSY],
                             ids=["crash-storm", "crash-lossy"])
    def test_harder_plans_recover_too(self, plan):
        w = generate_workload(0)
        observed = {
            proto: run_workload(w, proto, fault_plan=plan.with_(seed=1))
            for proto in w.protocols
        }
        differential_check(w, observed)

    def test_downtime_is_charged_when_a_node_dies(self):
        w = generate_workload(0)
        for s in range(16):
            obs = run_workload(w, "stache", fault_plan=CRASH.with_(seed=s))
            if obs.stats.crashes:
                assert obs.stats.downtime > 0
                labels = [row[0] for row in obs.stats.summary_rows()]
                assert "node crashes" in labels
                assert "downtime (cycles)" in labels
                return
        pytest.fail("no seed in range(16) produced a crash")

    def test_crash_slows_but_never_changes_the_image(self):
        w = generate_workload(0)
        clean = run_workload(w, "predictive")
        s = next(
            s for s in range(16)
            if run_workload(w, "predictive",
                            fault_plan=CRASH.with_(seed=s)).stats.crashes
        )
        crashed = run_workload(w, "predictive", fault_plan=CRASH.with_(seed=s))
        assert crashed.image == clean.image
        assert crashed.stats.wall_time > clean.stats.wall_time

    def test_run_terminates_within_event_budget(self):
        # the watchdog bounds every dead-node stall, so even a crash storm
        # on a lossy network finishes well inside the default event budget
        w = generate_workload(2)
        plan = STORM.with_(seed=0, drop_rate=0.02)
        obs = run_workload(w, "stache", fault_plan=plan, max_events=500_000)
        assert obs.stats is not None


class TestScriptedCrashPlans:
    def test_scripted_crash_event_arms_controller(self):
        w = generate_workload(0)
        from repro.faults.plan import FaultEvent
        plan = FaultPlan(name="one-crash", events=(
            FaultEvent("crash", ("crash", 1, 2, 3), amount=25_000.0),
        ))
        assert plan.affects_nodes()
        obs = run_workload(w, "stache", fault_plan=plan)
        assert obs.stats.crashes == 1
        assert run_workload(w, "stache").image == obs.image
