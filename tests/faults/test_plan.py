"""Tests for FaultPlan/FaultEvent: validation, modes, derivation."""

import pytest

from repro.faults import BUNDLED_PLANS, UNRECOVERABLE_PLAN, FaultPlan
from repro.faults.plan import FaultEvent
from repro.util import ConfigError


class TestValidation:
    @pytest.mark.parametrize("field", [
        "drop_rate", "dup_rate", "delay_rate", "stall_rate",
        "corrupt_rate", "stale_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(delay_cycles=-1)
        with pytest.raises(ConfigError):
            FaultPlan(timeout_budget=-1)
        with pytest.raises(ConfigError):
            FaultPlan(max_retries=-1)
        with pytest.raises(ConfigError):
            FaultPlan(retry_timeout=0.0)

    def test_unknown_event_action_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("explode", ("msg",))

    def test_plan_is_immutable(self):
        plan = FaultPlan(drop_rate=0.1)
        with pytest.raises(Exception):
            plan.drop_rate = 0.5


class TestModes:
    def test_zero_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.is_active()
        assert not plan.affects_messages()
        assert not plan.scripted

    def test_stall_only_plan_leaves_messages_alone(self):
        plan = FaultPlan(stall_rate=0.5)
        assert plan.is_active()
        assert not plan.affects_messages()

    def test_scripted_plan_is_active(self):
        ev = FaultEvent("drop", ("msg", "GET_RO", 0, 1, 0, 0, 0))
        plan = FaultPlan(events=(ev,))
        assert plan.scripted and plan.is_active() and plan.affects_messages()

    def test_scripted_schedule_only_needs_no_transport(self):
        ev = FaultEvent("stale", ("sched", 1, 0))
        plan = FaultPlan(events=(ev,))
        assert plan.is_active()
        assert not plan.affects_messages()

    def test_as_scripted_zeroes_rates(self):
        plan = FaultPlan(name="p", drop_rate=0.3, stall_rate=0.2, seed=7)
        ev = FaultEvent("drop", ("msg", "GET_RO", 0, 1, 0, 0, 0))
        scripted = plan.as_scripted([ev])
        assert scripted.scripted
        assert scripted.drop_rate == 0.0 and scripted.stall_rate == 0.0
        assert scripted.events == (ev,)
        assert scripted.seed == 7  # budget/seed settings survive

    def test_with_replaces(self):
        plan = FaultPlan(drop_rate=0.1)
        assert plan.with_(seed=3).seed == 3
        assert plan.with_(seed=3).drop_rate == 0.1


class TestDescribe:
    def test_event_describe_mentions_site(self):
        ev = FaultEvent("drop", ("msg", "GET_RO", 1, 0, 4, 2, 0))
        s = ev.describe()
        assert "GET_RO" in s and "1->0" in s and "seq=4" in s

    def test_stall_describe(self):
        assert "node 2" in FaultEvent("stall", ("stall", 2, 5), 600).describe()

    def test_plan_describe_lists_rates(self):
        s = FaultPlan(name="x", drop_rate=0.05, stall_rate=0.1).describe()
        assert "drop=0.05" in s and "stall=0.1" in s


class TestBundled:
    def test_all_bundled_plans_valid_and_active(self):
        for name, plan in BUNDLED_PLANS.items():
            assert plan.name == name
            assert plan.is_active()

    def test_unrecoverable_drops_everything_fast(self):
        assert UNRECOVERABLE_PLAN.drop_rate == 1.0
        assert UNRECOVERABLE_PLAN.timeout_budget < 100_000
