"""Tests for FaultPlan/FaultEvent: validation, modes, derivation."""

import pytest

from repro.faults import (BUNDLED_PLANS, CRASH_PLANS,
                          UNRECOVERABLE_PLAN, FaultPlan)
from repro.faults.plan import FaultEvent
from repro.util import ConfigError


class TestValidation:
    @pytest.mark.parametrize("field", [
        "drop_rate", "dup_rate", "delay_rate", "stall_rate",
        "corrupt_rate", "stale_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(delay_cycles=-1)
        with pytest.raises(ConfigError):
            FaultPlan(timeout_budget=-1)
        with pytest.raises(ConfigError):
            FaultPlan(max_retries=-1)
        with pytest.raises(ConfigError):
            FaultPlan(retry_timeout=0.0)

    def test_unknown_event_action_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("explode", ("msg",))

    def test_plan_is_immutable(self):
        plan = FaultPlan(drop_rate=0.1)
        with pytest.raises(Exception):
            plan.drop_rate = 0.5


class TestModes:
    def test_zero_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.is_active()
        assert not plan.affects_messages()
        assert not plan.scripted

    def test_stall_only_plan_leaves_messages_alone(self):
        plan = FaultPlan(stall_rate=0.5)
        assert plan.is_active()
        assert not plan.affects_messages()

    def test_scripted_plan_is_active(self):
        ev = FaultEvent("drop", ("msg", "GET_RO", 0, 1, 0, 0, 0))
        plan = FaultPlan(events=(ev,))
        assert plan.scripted and plan.is_active() and plan.affects_messages()

    def test_scripted_schedule_only_needs_no_transport(self):
        ev = FaultEvent("stale", ("sched", 1, 0))
        plan = FaultPlan(events=(ev,))
        assert plan.is_active()
        assert not plan.affects_messages()

    def test_as_scripted_zeroes_rates(self):
        plan = FaultPlan(name="p", drop_rate=0.3, stall_rate=0.2, seed=7)
        ev = FaultEvent("drop", ("msg", "GET_RO", 0, 1, 0, 0, 0))
        scripted = plan.as_scripted([ev])
        assert scripted.scripted
        assert scripted.drop_rate == 0.0 and scripted.stall_rate == 0.0
        assert scripted.events == (ev,)
        assert scripted.seed == 7  # budget/seed settings survive

    def test_with_replaces(self):
        plan = FaultPlan(drop_rate=0.1)
        assert plan.with_(seed=3).seed == 3
        assert plan.with_(seed=3).drop_rate == 0.1


class TestDescribe:
    def test_event_describe_mentions_site(self):
        ev = FaultEvent("drop", ("msg", "GET_RO", 1, 0, 4, 2, 0))
        s = ev.describe()
        assert "GET_RO" in s and "1->0" in s and "seq=4" in s

    def test_stall_describe(self):
        assert "node 2" in FaultEvent("stall", ("stall", 2, 5), 600).describe()

    def test_plan_describe_lists_rates(self):
        s = FaultPlan(name="x", drop_rate=0.05, stall_rate=0.1).describe()
        assert "drop=0.05" in s and "stall=0.1" in s


class TestBundled:
    def test_all_bundled_plans_valid_and_active(self):
        for name, plan in BUNDLED_PLANS.items():
            assert plan.name == name
            assert plan.is_active()

    def test_unrecoverable_drops_everything_fast(self):
        assert UNRECOVERABLE_PLAN.drop_rate == 1.0
        assert UNRECOVERABLE_PLAN.timeout_budget < 100_000


class TestCrashFields:
    def test_crash_rate_bounded(self):
        with pytest.raises(ConfigError):
            FaultPlan(crash_rate=1.5)

    def test_detect_must_precede_restart(self):
        with pytest.raises(ConfigError):
            FaultPlan(detect_cycles=5_000.0, restart_cycles=5_000.0)
        with pytest.raises(ConfigError):
            FaultPlan(detect_cycles=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(restart_cycles=-1.0)

    def test_negative_max_crashes_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(max_crashes=-1)

    def test_affects_nodes(self):
        assert FaultPlan(crash_rate=0.1).affects_nodes()
        assert not FaultPlan(drop_rate=0.1).affects_nodes()
        ev = FaultEvent("crash", ("crash", 1, 0, 2), amount=30_000.0)
        assert FaultPlan(events=(ev,)).affects_nodes()
        assert not FaultPlan(events=(ev,)).affects_messages()

    def test_crash_event_describe(self):
        ev = FaultEvent("crash", ("crash", 2, 3, 7), amount=30_000.0)
        s = ev.describe()
        assert "node 2" in s and "phase 3" in s and "op 7" in s

    def test_all_crash_plans_valid_and_active(self):
        for name, plan in CRASH_PLANS.items():
            assert plan.name == name
            assert plan.is_active() and plan.affects_nodes()

    def test_as_scripted_zeroes_crash_rate(self):
        scripted = CRASH_PLANS["crash"].as_scripted(())
        assert scripted.crash_rate == 0.0
        assert not scripted.is_active()


class TestSerialization:
    def _all_plans(self):
        scripted = FaultPlan(name="scripted", events=(
            FaultEvent("drop", ("msg", "GET_RO", 0, 1, 4, 0, 0)),
            FaultEvent("stall", ("stall", 2, 5), 600.0),
            FaultEvent("crash", ("crash", 1, 3, 2), 30_000.0),
        ))
        return [*BUNDLED_PLANS.values(), *CRASH_PLANS.values(),
                UNRECOVERABLE_PLAN, scripted]

    def test_round_trip_every_plan(self):
        for plan in self._all_plans():
            assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_through_json_text(self):
        import json
        for plan in self._all_plans():
            blob = json.dumps(plan.to_dict(), sort_keys=True)
            assert FaultPlan.from_dict(json.loads(blob)) == plan

    def test_save_load_file(self, tmp_path):
        from repro.faults import load_plan, save_plan
        plan = CRASH_PLANS["crash-lossy"].as_scripted((
            FaultEvent("crash", ("crash", 0, 1, 0), 20_000.0),
        ))
        save_plan(plan, tmp_path / "plan.json")
        assert load_plan(tmp_path / "plan.json") == plan

    def test_legacy_record_without_crash_fields_loads(self):
        # a plan saved before the crash model existed: no crash_rate,
        # restart_cycles, detect_cycles, max_crashes keys at all
        legacy = {
            "format": 1, "name": "old-drop", "seed": 3, "drop_rate": 0.05,
            "events": [{"action": "drop",
                        "key": ["msg", "GET_RO", 0, 1, 4, 0, 0]}],
        }
        plan = FaultPlan.from_dict(legacy)
        assert plan.drop_rate == 0.05
        assert plan.crash_rate == 0.0
        assert plan.max_crashes == FaultPlan().max_crashes
        assert plan.events[0].amount == 0.0

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            FaultPlan.from_dict({"format": 1, "explode_rate": 0.5})

    def test_future_format_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            FaultPlan.from_dict({"format": 99})

    def test_event_record_missing_key_rejected(self):
        with pytest.raises(ConfigError, match="missing"):
            FaultEvent.from_dict({"action": "drop"})

    def test_to_dict_is_json_native(self):
        import json
        record = CRASH_PLANS["crash-storm"].to_dict()
        assert record["format"] == 1
        json.dumps(record)  # must not raise
