"""Graceful degradation of the predictive protocol under schedule faults.

Injected staleness/corruption and chronically-wrong predictions must only
ever cost performance: the predictive protocol falls back to plain Stache
behaviour (flush + cooldown) while coherence is preserved throughout.
"""

from repro.core.schedule import EntryKind
from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.tempest.machine import PhaseTrace
from repro.verify.monitor import InvariantMonitor

from tests.helpers import small_machine


def _group(m, directive, ops_by_node):
    ops = [[] for _ in range(len(m.nodes))]
    for node, node_ops in ops_by_node.items():
        ops[node] = node_ops
    m.begin_group(directive)
    m.run_phase(PhaseTrace(f"d{directive}", ops))
    m.end_group()


def _reader_writer_rounds(m, first, rounds):
    """d1: node1 reads; d2: node2 writes (invalidating node1's copy)."""
    for _ in range(rounds):
        _group(m, 1, {1: [("r", first)]})
        _group(m, 2, {2: [("w", first)]})


class TestInjectedScheduleFaults:
    def test_stale_instance_freezes_learning(self):
        clean, first = small_machine("predictive", n_nodes=3)
        _reader_writer_rounds(clean, first, 3)
        assert clean.protocol.presend_blocks > 0  # baseline really pre-sends

        stale, first = small_machine("predictive", n_nodes=3)
        # freeze d1's very first instance: the read fault it would have
        # learned from is never recorded
        stale.install_fault_plan(FaultPlan(events=(
            FaultEvent("stale", ("sched", 1, 0)),
        )))
        monitor = InvariantMonitor().attach(stale)
        _reader_writer_rounds(stale, first, 3)
        assert stale.protocol.presend_blocks < clean.protocol.presend_blocks
        assert monitor.checks_run > 0
        # learning resumes the next instance, so prediction still recovers
        assert stale.protocol.schedules[1].entries

    def test_corrupt_schedule_mispredicts_but_stays_coherent(self):
        m, first = small_machine("predictive", n_nodes=3)
        m.install_fault_plan(FaultPlan(events=(
            FaultEvent("corrupt", ("sched", 1, 1)),
        )))
        monitor = InvariantMonitor().attach(m)
        _reader_writer_rounds(m, first, 4)
        assert monitor.checks_run > 0  # every barrier re-verified
        # the flip persists (node1's reads now hit on the over-provisioned
        # writable copy, and hits are never recorded) — but the copies are
        # still consumed, so the misprediction costs nothing it would need
        # degradation to recover from
        entry = m.protocol.schedules[1].entries[first]
        assert entry.kind is EntryKind.WRITE and entry.writer == 1
        assert m.stats.schedules_degraded == 0

    def test_corrupt_flips_entry_directions(self):
        m, first = small_machine("predictive", n_nodes=3)
        sched = m.protocol.schedule_for(1)
        sched.begin_instance()
        sched.record(first, 1, "r")
        sched.begin_instance()
        sched.record(first + 1, 2, "w")
        m.protocol._corrupt_schedule(sched)
        read_turned = sched.entries[first]
        assert read_turned.kind is EntryKind.WRITE and read_turned.writer == 1
        write_turned = sched.entries[first + 1]
        assert write_turned.kind is EntryKind.READ and 2 in write_turned.readers


class TestChronicMisprediction:
    def _dead_consumer(self, m, first, rounds):
        """node1 reads once, then departs; node2 keeps invalidating the
        copies d1 pre-sends to the reader that never comes back."""
        _group(m, 1, {1: [("r", first)]})
        _group(m, 2, {2: [("w", first)]})
        for _ in range(rounds):
            _group(m, 1, {})
            _group(m, 2, {2: [("w", first)]})

    def test_dead_consumer_degrades_once_and_stabilizes(self):
        m, first = small_machine("predictive", n_nodes=3)
        monitor = InvariantMonitor().attach(m)
        self._dead_consumer(m, first, 12)
        assert m.stats.schedules_degraded == 1
        sched = m.protocol.schedules[1]
        assert sched.wasted_streak == 0  # degrade resets the streak
        assert not sched.entries  # flushed, and nothing wrong relearned
        assert monitor.checks_run > 0

    def test_patience_bounds_wasted_presends(self):
        m, first = small_machine("predictive", n_nodes=3)
        self._dead_consumer(m, first, 12)
        after_degrade = m.protocol.presend_blocks
        # degradation stops the waste: more dead rounds add zero transfers
        for _ in range(10):
            _group(m, 1, {})
            _group(m, 2, {2: [("w", first)]})
        assert m.protocol.presend_blocks == after_degrade

    def test_degraded_schedule_relearns_after_cooldown(self):
        m, first = small_machine("predictive", n_nodes=3)
        self._dead_consumer(m, first, 12)
        assert m.stats.schedules_degraded == 1
        blocks_at_degrade = m.protocol.presend_blocks
        # the consumer returns: d1 relearns the read and pre-sends again
        _reader_writer_rounds(m, first, 4)
        assert m.protocol.presend_blocks > blocks_at_degrade
        assert m.stats.schedules_degraded == 1  # no further degradation
        sched = m.protocol.schedules[1]
        assert sched.entries[first].kind is EntryKind.READ
