"""Tests for MachineConfig validation and derived costs."""

import pytest

from repro.util import ConfigError, MachineConfig
from repro.util.config import CM5_DEFAULTS


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = MachineConfig()
        assert cfg.n_nodes == 8
        assert cfg.block_size == 32

    def test_cm5_defaults_32_nodes(self):
        assert CM5_DEFAULTS.n_nodes == 32

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_nodes=0)

    def test_rejects_negative_nodes(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_nodes=-4)

    @pytest.mark.parametrize("bs", [0, 3, 33, 48, -32])
    def test_rejects_non_power_of_two_block(self, bs):
        with pytest.raises(ConfigError):
            MachineConfig(block_size=bs)

    @pytest.mark.parametrize("bs", [32, 64, 128, 256, 1024])
    def test_accepts_paper_block_sizes(self, bs):
        assert MachineConfig(block_size=bs).block_size == bs

    def test_rejects_page_smaller_than_block(self):
        with pytest.raises(ConfigError):
            MachineConfig(block_size=1024, page_size=512)

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            MachineConfig(msg_latency=-1)
        with pytest.raises(ConfigError):
            MachineConfig(per_byte_cost=-0.5)


class TestDerived:
    def test_message_cost_includes_payload(self):
        cfg = MachineConfig(msg_latency=100, per_byte_cost=0.5)
        assert cfg.message_cost(0) == 100
        assert cfg.message_cost(32) == 116

    def test_bulk_cost_adds_startup_once(self):
        cfg = MachineConfig(msg_latency=100, per_byte_cost=1.0, bulk_msg_overhead=50)
        assert cfg.bulk_message_cost(10) == 160

    def test_blocks_per_page(self):
        cfg = MachineConfig(block_size=32, page_size=4096)
        assert cfg.blocks_per_page() == 128

    def test_with_replaces_field(self):
        cfg = MachineConfig(n_nodes=4)
        cfg2 = cfg.with_(block_size=256)
        assert cfg2.block_size == 256
        assert cfg2.n_nodes == 4
        assert cfg.block_size == 32  # original untouched

    def test_with_still_validates(self):
        with pytest.raises(ConfigError):
            MachineConfig().with_(block_size=100)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(Exception):
            cfg.n_nodes = 16
