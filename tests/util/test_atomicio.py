"""Atomic write helpers: byte-compatibility and no leftover temp files."""

from __future__ import annotations

import json

from repro.util.atomicio import (atomic_write_bytes, atomic_write_json,
                                 atomic_write_text)


def test_bytes_roundtrip_and_no_temp_residue(tmp_path):
    path = tmp_path / "out.bin"
    atomic_write_bytes(path, b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"
    assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


def test_overwrite_replaces_whole_content(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "a much longer first version\n")
    atomic_write_text(path, "short\n")
    assert path.read_text() == "short\n"


def test_creates_missing_parents(tmp_path):
    path = tmp_path / "a" / "b" / "out.json"
    atomic_write_json(path, {"k": 1})
    assert json.loads(path.read_text()) == {"k": 1}


def test_json_bytes_match_plain_dump(tmp_path):
    # CI compares artifacts with cmp; the atomic path must not change bytes
    doc = {"b": [1, 2], "a": {"nested": True}}
    path = tmp_path / "doc.json"
    atomic_write_json(path, doc)
    assert path.read_text() == json.dumps(doc, indent=2, sort_keys=True) + "\n"
    atomic_write_json(path, doc, indent=1)
    assert path.read_text() == json.dumps(doc, indent=1, sort_keys=True) + "\n"


def test_cli_write_json_is_atomic_and_byte_identical(tmp_path):
    from repro.cli import _write_json

    doc = {"z": 1, "a": 2}
    out = tmp_path / "nested" / "doc.json"
    _write_json(str(out), doc)
    assert out.read_text() == json.dumps(doc, indent=2, sort_keys=True) + "\n"
