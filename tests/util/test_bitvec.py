"""Unit + property tests for the data-flow bit vector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import BitVector


class TestBasics:
    def test_starts_empty(self):
        v = BitVector(8)
        assert not v
        assert v.count() == 0
        assert list(v.indices()) == []

    def test_set_test_clear(self):
        v = BitVector(8)
        v.set(3)
        assert v.test(3)
        assert v[3]
        assert not v[2]
        v.clear(3)
        assert not v.test(3)

    def test_out_of_range(self):
        v = BitVector(4)
        with pytest.raises(IndexError):
            v.set(4)
        with pytest.raises(IndexError):
            v.test(-1)

    def test_full(self):
        v = BitVector.full(5)
        assert v.count() == 5
        assert list(v.indices()) == [0, 1, 2, 3, 4]

    def test_from_indices(self):
        v = BitVector.from_indices(10, [1, 5, 5, 9])
        assert list(v.indices()) == [1, 5, 9]

    def test_zero_width(self):
        v = BitVector(0)
        assert len(v) == 0
        assert not v

    def test_rejects_bits_exceeding_width(self):
        with pytest.raises(ValueError):
            BitVector(2, 0b100)

    def test_iter_yields_bools_lsb_first(self):
        v = BitVector.from_indices(4, [0, 2])
        assert list(v) == [True, False, True, False]


class TestSetOps:
    def test_union(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert list((a | b).indices()) == [1, 2, 3]

    def test_intersection(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert list((a & b).indices()) == [2]

    def test_difference(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert list((a - b).indices()) == [1]

    def test_inplace_union(self):
        a = BitVector.from_indices(8, [1])
        a |= BitVector.from_indices(8, [2])
        assert list(a.indices()) == [1, 2]

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(4) | BitVector(5)

    def test_copy_is_independent(self):
        a = BitVector.from_indices(8, [1])
        b = a.copy()
        b.set(2)
        assert not a.test(2)

    def test_equality_and_hash(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector.from_indices(8, [1])
        assert a != BitVector.from_indices(9, [1, 2])

    def test_subset(self):
        a = BitVector.from_indices(8, [1])
        b = BitVector.from_indices(8, [1, 2])
        assert a.is_subset(b)
        assert not b.is_subset(a)


idx_sets = st.sets(st.integers(min_value=0, max_value=63))


class TestProperties:
    @given(idx_sets, idx_sets)
    def test_union_matches_set_semantics(self, xs, ys):
        a = BitVector.from_indices(64, xs)
        b = BitVector.from_indices(64, ys)
        assert set((a | b).indices()) == xs | ys

    @given(idx_sets, idx_sets)
    def test_intersection_matches_set_semantics(self, xs, ys):
        a = BitVector.from_indices(64, xs)
        b = BitVector.from_indices(64, ys)
        assert set((a & b).indices()) == xs & ys

    @given(idx_sets, idx_sets)
    def test_difference_matches_set_semantics(self, xs, ys):
        a = BitVector.from_indices(64, xs)
        b = BitVector.from_indices(64, ys)
        assert set((a - b).indices()) == xs - ys

    @given(idx_sets)
    def test_count_matches_cardinality(self, xs):
        assert BitVector.from_indices(64, xs).count() == len(xs)

    @given(idx_sets, idx_sets)
    def test_union_is_monotone(self, xs, ys):
        """The data-flow join only grows — fixpoint termination relies on it."""
        a = BitVector.from_indices(64, xs)
        b = BitVector.from_indices(64, ys)
        assert a.is_subset(a | b)
        assert b.is_subset(a | b)
