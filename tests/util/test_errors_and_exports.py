"""Tests for the error hierarchy and the public package surface."""

import pytest

import repro
from repro.util import (
    CompileError,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    StructuredError,
    TransportTimeout,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigError, ProtocolError, SimulationError, CompileError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_one_catch_at_the_boundary(self):
        with pytest.raises(ReproError):
            raise ProtocolError("boom")

    def test_compile_error_location_formatting(self):
        e = CompileError("bad token", line=3, col=7)
        assert "line 3" in str(e)
        assert "col 7" in str(e)
        assert e.line == 3 and e.col == 7

    def test_compile_error_line_only(self):
        e = CompileError("oops", line=9)
        assert "line 9" in str(e)
        assert "col" not in str(e)

    def test_compile_error_no_location(self):
        e = CompileError("plain")
        assert str(e) == "plain"
        assert e.line is None


class TestStructuredContext:
    @pytest.mark.parametrize(
        "exc", [ProtocolError, SimulationError, TransportTimeout]
    )
    def test_structured_kwargs_appear_in_message(self, exc):
        e = exc("stuck", node=3, time=125.0, block=16,
                message_repr="<GET_RO 2->3 blk=16>")
        assert issubclass(exc, StructuredError)
        assert e.node == 3 and e.block == 16 and e.time == 125.0
        s = str(e)
        assert "node=3" in s and "block=16" in s and "t=125" in s
        assert "GET_RO" in s

    def test_plain_message_unchanged_without_context(self):
        e = ProtocolError("boom")
        assert str(e) == "boom"
        assert e.node is None and e.block is None

    def test_context_dict_holds_only_set_fields(self):
        e = SimulationError("x", node=1)
        ctx = e.context()
        assert ctx == {"node": 1}

    def test_transport_timeout_is_simulation_error(self):
        assert issubclass(TransportTimeout, SimulationError)

    def test_event_context(self):
        e = TransportTimeout("gave up", node=2, event="drop GET_RO #4")
        assert "drop GET_RO #4" in str(e)
        assert e.event == "drop GET_RO #4"


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.core as core
        import repro.cstar as cstar
        import repro.protocols as protocols
        import repro.sim as sim
        import repro.tempest as tempest
        import repro.util as util

        for mod in (core, cstar, protocols, sim, tempest, util):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_make_machine_registry_complete(self):
        from repro.core import PROTOCOLS

        assert set(PROTOCOLS) == {"stache", "predictive", "write-update"}

    def test_unknown_protocol_rejected(self):
        from repro.core import make_machine
        from repro.util import ConfigError, MachineConfig

        with pytest.raises(ConfigError):
            make_machine(MachineConfig(), "mesi")
