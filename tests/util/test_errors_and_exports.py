"""Tests for the error hierarchy and the public package surface."""

import pytest

import repro
from repro.util import (
    CompileError,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigError, ProtocolError, SimulationError, CompileError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_one_catch_at_the_boundary(self):
        with pytest.raises(ReproError):
            raise ProtocolError("boom")

    def test_compile_error_location_formatting(self):
        e = CompileError("bad token", line=3, col=7)
        assert "line 3" in str(e)
        assert "col 7" in str(e)
        assert e.line == 3 and e.col == 7

    def test_compile_error_line_only(self):
        e = CompileError("oops", line=9)
        assert "line 9" in str(e)
        assert "col" not in str(e)

    def test_compile_error_no_location(self):
        e = CompileError("plain")
        assert str(e) == "plain"
        assert e.line is None


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.core as core
        import repro.cstar as cstar
        import repro.protocols as protocols
        import repro.sim as sim
        import repro.tempest as tempest
        import repro.util as util

        for mod in (core, cstar, protocols, sim, tempest, util):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_make_machine_registry_complete(self):
        from repro.core import PROTOCOLS

        assert set(PROTOCOLS) == {"stache", "predictive", "write-update"}

    def test_unknown_protocol_rejected(self):
        from repro.core import make_machine
        from repro.util import ConfigError, MachineConfig

        with pytest.raises(ConfigError):
            make_machine(MachineConfig(), "mesi")
