"""Tests for ASCII table / bar-chart rendering used by the bench harness."""

import pytest

from repro.util import format_bar_chart, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in out
        assert "20.250" in out

    def test_title(self):
        out = format_table(["x"], [["y"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_numbers_right_aligned(self):
        out = format_table(["n"], [[1.0], [100.0]])
        rows = out.splitlines()[-2:]
        assert rows[0].endswith("1.000")
        assert rows[1].endswith("100.000")

    def test_floatfmt(self):
        out = format_table(["n"], [[1.23456]], floatfmt=".1f")
        assert "1.2" in out and "1.234" not in out


class TestBarChart:
    def test_empty(self):
        assert format_bar_chart([]) == "(no data)"

    def test_relative_totals(self):
        bars = [
            ("fast", {"a": 50.0, "b": 50.0}),
            ("slow", {"a": 150.0, "b": 50.0}),
        ]
        out = format_bar_chart(bars)
        assert " 1.00x" in out
        assert " 2.00x" in out

    def test_legend_lists_categories(self):
        out = format_bar_chart([("x", {"Remote data wait": 1.0, "Compute+Synch": 2.0})])
        assert "Remote data wait" in out
        assert "Compute+Synch" in out

    def test_longest_bar_spans_width(self):
        bars = [("a", {"c": 10.0}), ("b", {"c": 20.0})]
        out = format_bar_chart(bars, width=40)
        bar_line = [l for l in out.splitlines() if l.startswith("b ")][0]
        assert "#" * 40 in bar_line
