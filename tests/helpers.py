"""Shared test fixtures: small machines with owner-homed regions."""

from __future__ import annotations

from repro.core import make_machine
from repro.tempest.machine import Machine, PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util import MachineConfig


def small_machine(
    protocol: str = "stache",
    n_nodes: int = 2,
    block_size: int = 32,
    home_node: int = 0,
    n_pages: int = 4,
    **cfg_kwargs,
) -> tuple[Machine, int]:
    """A machine with one region homed entirely on ``home_node``.

    Returns (machine, first_block).  The home node's tags are initialized to
    READ_WRITE for every block of the region, as at program start.
    """
    cfg = MachineConfig(n_nodes=n_nodes, block_size=block_size, **cfg_kwargs)
    m = make_machine(cfg, protocol)
    region = m.addr_space.allocate("data", n_pages * cfg.page_size,
                                   home_policy=lambda p: home_node)
    first = m.addr_space.block_of(region.base)
    nblocks = region.size // cfg.block_size
    for b in range(first, first + nblocks):
        m.nodes[home_node].tags.set(b, AccessTag.READ_WRITE)
    return m, first


def idle_ops(n_nodes: int, busy: dict[int, list] | None = None) -> list[list]:
    """Per-node op lists: empty except for the nodes in ``busy``."""
    ops: list[list] = [[] for _ in range(n_nodes)]
    if busy:
        for node, node_ops in busy.items():
            ops[node] = node_ops
    return ops


def run_one_phase(m: Machine, busy: dict[int, list], name: str = "phase") -> None:
    m.run_phase(PhaseTrace(name, idle_ops(m.config.n_nodes, busy)))
