"""``repro corpus doctor``: inspection report, repair actions, exit codes."""

from __future__ import annotations

from repro.corpus import open_corpus
from repro.corpus.doctor import doctor
from tests.corpus.helpers import entry_for


def seeded_corpus(root):
    corpus = open_corpus(root)
    corpus.store("key/a", entry_for(directive=0))
    corpus.store("key/b", entry_for(directive=1, blocks=(5, 6, 7)))
    return corpus


def test_healthy_corpus_is_status_zero(tmp_path):
    seeded_corpus(tmp_path / "c")
    report, status = doctor(tmp_path / "c")
    assert status == 0
    assert "verdict: healthy" in report
    assert "key/a" in report and "key/b" in report
    assert "entries: 2" in report


def test_damage_is_status_one_and_reported(tmp_path):
    root = tmp_path / "c"
    seeded_corpus(root)
    (segment,) = root.glob("seg-*.log")
    segment.write_bytes(segment.read_bytes() + b"\x00\x00\x99torn")
    report, status = doctor(root)
    assert status == 1
    assert "torn-tail" in report
    # opening was the repair; a second doctor pass sees a healed store
    # with the quarantine record still on file
    report2, status2 = doctor(root)
    assert status2 == 1  # quarantine still non-empty
    assert "recovered 0 torn tail(s)" in report2


def test_scrub_returns_corpus_to_healthy(tmp_path):
    root = tmp_path / "c"
    seeded_corpus(root)
    (segment,) = root.glob("seg-*.log")
    segment.write_bytes(segment.read_bytes() + b"\xff")
    _, status = doctor(root, scrub=True)
    assert status == 1  # this pass still found the damage
    report, status = doctor(root)
    assert status == 0
    assert "quarantine: empty" in report


def test_compact_rewrites_segments(tmp_path):
    root = tmp_path / "c"
    corpus = open_corpus(root)
    for i in range(10):
        corpus.store("hot", entry_for(blocks=(i,)))
    before = sum(p.stat().st_size for p in root.glob("seg-*.log"))
    report, status = doctor(root, compact=True)
    assert status == 0
    after = sum(p.stat().st_size for p in root.glob("seg-*.log"))
    assert after < before
    assert open_corpus(root).lookup("hot") == entry_for(blocks=(9,))


def test_unusable_corpus_is_status_two(tmp_path):
    path = tmp_path / "not-a-dir"
    path.write_text("")
    report, status = doctor(path)
    assert status == 2
    assert "unusable" in report


def test_cli_corpus_doctor(tmp_path, capsys):
    from repro.cli import main

    seeded_corpus(tmp_path / "c")
    assert main(["corpus", "doctor", str(tmp_path / "c")]) == 0
    out = capsys.readouterr().out
    assert "verdict: healthy" in out
