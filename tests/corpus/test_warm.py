"""The corpus differential guarantee: warming changes timing, never results.

* A corpus-warmed machine holds exactly the schedules the records describe
  (identical to an in-memory ``from_record`` insert).
* For every protocol, a warmed run's observables (who read/wrote which
  block, final memory image) equal the cold run's.
* A fuzzer-mangled corpus degrades to cold start — same observables, no
  exception anywhere near the simulation.
* Warming through the real ``fuzz``/``run_specs`` entry points leaves
  reports deterministic (and the learning pass identical to no corpus).
"""

from __future__ import annotations

import random

from repro.core import make_machine
from repro.core.schedule import CommSchedule
from repro.corpus import open_corpus, supports_warm, workload_key
from repro.verify import ALL_PROTOCOLS
from repro.verify.oracle import run_workload
from repro.verify.workload import generate_workload
from tests.corpus.helpers import entry_for


def harvest_records(workload, protocol: str = "predictive") -> list[dict]:
    return run_workload(workload, protocol, harvest=True).harvest


def observables_key(obs):
    return (obs.readers, obs.writers, obs.image)


class TestWarmSeed:
    def test_warmed_machine_equals_memory_insert(self):
        workload = generate_workload(0)
        records = harvest_records(workload)
        assert records, "workload learned nothing; pick another seed"

        warmed = make_machine(workload.config, "predictive", warm=records)
        expected = make_machine(workload.config, "predictive")
        for record in records:
            expected.protocol.schedules.insert(CommSchedule.from_record(record))

        got = {d: s.to_record() for d, s in warmed.protocol.schedules.items()}
        want = {d: s.to_record()
                for d, s in expected.protocol.schedules.items()}
        assert got == want

    def test_warm_seed_skips_undecodable_records(self):
        workload = generate_workload(0)
        records = harvest_records(workload)
        machine = make_machine(workload.config, "predictive")
        bad = [{"directive": "x"}, None, 42, *records]
        assert machine.protocol.warm_seed(bad) == len(records)

    def test_live_schedule_outranks_corpus(self):
        workload = generate_workload(0)
        records = harvest_records(workload)
        machine = make_machine(workload.config, "predictive")
        live = CommSchedule.from_record(records[0])
        live.cooldown = 7  # marker: must survive the warm attempt
        machine.protocol.schedules.insert(live)
        machine.protocol.warm_seed(records)
        directive = records[0]["directive"]
        assert machine.protocol.schedules[directive] is live


class TestObservableEquivalence:
    def test_warmed_observables_equal_cold_for_every_protocol(self):
        for seed in (0, 1):
            workload = generate_workload(seed)
            records = harvest_records(workload)
            for protocol in ALL_PROTOCOLS:
                if protocol not in workload.protocols:
                    continue
                cold = run_workload(workload, protocol)
                warmed = run_workload(workload, protocol, warm=records)
                assert observables_key(warmed) == observables_key(cold), (
                    f"warming changed results under {protocol} seed {seed}")

    def test_warming_reduces_relearning(self):
        # the point of the corpus: a warmed run faults less
        workload = generate_workload(0)
        records = harvest_records(workload)
        cold = run_workload(workload, "predictive")
        warmed = run_workload(workload, "predictive", warm=records)
        assert warmed.stats.misses <= cold.stats.misses

    def test_supports_warm_matches_protocol_capability(self):
        assert supports_warm("predictive")
        assert not supports_warm("stache")
        assert not supports_warm("write-update")
        assert not supports_warm("no-such-protocol")


class TestMangledCorpus:
    def test_mangled_corpus_reproduces_cold_start(self, tmp_path):
        workload = generate_workload(0)
        records = harvest_records(workload)
        root = tmp_path / "c"
        key = workload_key(workload, "predictive")
        corpus = open_corpus(root)
        corpus.store(key, {"protocol": "predictive",
                           "n_nodes": workload.config.n_nodes,
                           "records": records})

        rng = random.Random(17)
        for segment in root.glob("seg-*.log"):
            data = bytearray(segment.read_bytes())
            for _ in range(32):
                data[rng.randrange(len(data))] = rng.randrange(256)
            segment.write_bytes(bytes(data))

        mangled = open_corpus(root)
        assert mangled.ok  # damaged, not unusable
        entry = mangled.lookup(key, workload.config.n_nodes)
        warm = entry["records"] if entry is not None else None
        cold = run_workload(workload, "predictive")
        after = run_workload(workload, "predictive", warm=warm)
        assert observables_key(after) == observables_key(cold)

    def test_fuzz_learning_pass_matches_no_corpus(self, tmp_path):
        from repro.verify.fuzz import fuzz

        cold = fuzz(seeds=2, shrink=False).to_dict()
        corpus = open_corpus(tmp_path / "c")
        learn = fuzz(seeds=2, shrink=False, corpus=corpus).to_dict()
        assert learn == cold  # harvesting must not perturb the report
        warm1 = fuzz(seeds=2, shrink=False, corpus=corpus).to_dict()
        warm2 = fuzz(seeds=2, shrink=False, corpus=corpus).to_dict()
        assert warm1 == warm2  # warmed runs stay deterministic
        assert corpus.stats()["hits"] > 0

    def test_run_specs_roundtrip_through_corpus(self, tmp_path):
        from repro.apps import water
        from repro.bench.figures import WATER_CFG, WATER_KW
        from repro.bench.harness import VersionSpec, run_specs

        spec = VersionSpec("opt", water, "predictive", True,
                           WATER_CFG.with_(block_size=32), dict(WATER_KW))
        corpus = open_corpus(tmp_path / "c")
        (cold,) = run_specs([spec], corpus=corpus)
        assert corpus.stats()["stores"] == 1
        (warmed,) = run_specs([spec], corpus=corpus)
        assert corpus.stats()["hits"] >= 1
        # warmed run pre-sends from iteration 1: strictly fewer misses
        assert warmed.stats.misses <= cold.stats.misses

    def test_corpus_failure_never_reaches_the_simulation(self, tmp_path):
        from repro.verify.fuzz import fuzz

        path = tmp_path / "not-a-dir"
        path.write_text("")
        corpus = open_corpus(path)  # NullCorpus
        report = fuzz(seeds=1, shrink=False, corpus=corpus)
        assert report.ok
