"""Shared fixtures for the corpus tests: tiny valid entries and segments."""

from __future__ import annotations


def entry_for(n_nodes: int = 2, directive: int = 0, blocks=(1, 2),
              cooldown: int = 0) -> dict:
    """A minimal valid corpus entry (one directive, READ anticipations)."""
    return {
        "protocol": "predictive",
        "n_nodes": n_nodes,
        "records": [{
            "directive": directive,
            "cooldown": cooldown,
            "entries": [
                {"block": b, "kind": "read", "readers": [n_nodes - 1],
                 "writer": None, "pre_conflict": None}
                for b in blocks
            ],
        }],
    }
