"""Durability properties: arbitrary damage never yields a wrong schedule.

The contract under test — for ANY mutilation of a committed segment,
``open_corpus``:

* never raises,
* yields only entries that were actually stored, byte-for-byte (a damaged
  record is quarantined, never silently altered),
* truncation specifically preserves the valid prefix (a record whose
  frame survives the cut is always recovered).

The truncation sweep is exhaustive over every byte boundary (the segment
is kept small on purpose); bit flips are driven by Hypothesis.
"""

from __future__ import annotations

import shutil
import tempfile
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.corpus import open_corpus
from repro.corpus.store import _frame, _header_frame
from tests.corpus.helpers import entry_for

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

ENTRIES = {
    "key/a": entry_for(directive=0, blocks=(1,)),
    "key/b": entry_for(directive=1, blocks=(2, 3)),
    "key/c": entry_for(directive=2, blocks=(4,), cooldown=3),
}


def committed_segment() -> tuple[bytes, list[int]]:
    """One segment holding ENTRIES, plus the frame-boundary offsets."""
    chunks = [_header_frame()]
    for gen, (key, entry) in enumerate(sorted(ENTRIES.items()), start=1):
        chunks.append(_frame({"op": "put", "gen": gen, "key": key,
                              "entry": entry}))
    boundaries, at = [], 0
    for chunk in chunks:
        at += len(chunk)
        boundaries.append(at)
    return b"".join(chunks), boundaries


SEGMENT, BOUNDARIES = committed_segment()


def open_over(tmp_path, data: bytes):
    root = Path(tmp_path) / "c"
    if root.exists():
        shutil.rmtree(root)
    root.mkdir()
    (root / "seg-000001.log").write_bytes(data)
    return open_corpus(root)


@contextmanager
def fresh_root():
    # hypothesis runs many examples per test call; pytest's tmp_path is not
    # reset between them, so damage sweeps make their own directory per
    # example
    with tempfile.TemporaryDirectory(prefix="corpus-prop-") as tmp:
        yield tmp


def assert_no_wrong_schedule(corpus) -> dict:
    """Recovered entries must be exactly what was stored, never altered."""
    recovered = dict(corpus.entries())
    for key, entry in recovered.items():
        assert key in ENTRIES, f"invented key {key!r}"
        assert entry == ENTRIES[key], f"altered entry under {key!r}"
    return recovered


def test_truncation_at_every_byte_boundary(tmp_path):
    for cut in range(len(SEGMENT) + 1):
        corpus = open_over(tmp_path, SEGMENT[:cut])
        assert corpus.ok, f"cut at {cut} made the corpus unusable"
        recovered = assert_no_wrong_schedule(corpus)
        # frames wholly inside the prefix must survive
        expected = sum(1 for b in BOUNDARIES[1:] if b <= cut)
        assert len(recovered) == expected, (
            f"cut at {cut}: recovered {len(recovered)}, expected {expected}")
        if cut not in (0, *BOUNDARIES):
            assert corpus.stats()["recovered_tails"] == 1
        # recovery truncated the file back to the last good boundary;
        # a second open must be clean (repair converges)
        again = open_corpus(tmp_path / "c")
        assert_no_wrong_schedule(again)
        assert again.stats()["recovered_tails"] == 0
        assert len(again.entries()) == expected


@settings(max_examples=60, deadline=None)
@given(st.integers(0, len(SEGMENT) - 1), st.integers(0, 7))
def test_single_bit_flip_never_yields_wrong_schedule(pos, bit):
    mangled = bytearray(SEGMENT)
    mangled[pos] ^= 1 << bit
    with fresh_root() as tmp:
        corpus = open_over(tmp, bytes(mangled))
        assert corpus.ok
        recovered = assert_no_wrong_schedule(corpus)
        if len(recovered) < len(ENTRIES):
            stats = corpus.stats()
            assert stats["quarantined"] + stats["skipped_segments"] >= 1


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_byte_stomps_never_yield_wrong_schedule(data):
    mangled = bytearray(SEGMENT)
    for _ in range(data.draw(st.integers(1, 8))):
        pos = data.draw(st.integers(0, len(SEGMENT) - 1))
        mangled[pos] = data.draw(st.integers(0, 255))
    with fresh_root() as tmp:
        corpus = open_over(tmp, bytes(mangled))
        assert corpus.ok
        assert_no_wrong_schedule(corpus)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=0, max_size=512))
def test_pure_garbage_segment_is_survivable(garbage):
    with fresh_root() as tmp:
        corpus = open_over(tmp, garbage)
        assert corpus.ok
        assert_no_wrong_schedule(corpus)
