"""ScheduleCorpus behaviour: roundtrip, budgets, quarantine, degradation."""

from __future__ import annotations

import shutil

import pytest

from repro.corpus import NullCorpus, open_corpus, validate_entry
from repro.corpus.store import _frame, _header_frame
from tests.corpus.helpers import entry_for


class TestRoundtrip:
    def test_store_then_lookup(self, tmp_path):
        corpus = open_corpus(tmp_path / "c")
        assert corpus.ok
        entry = entry_for()
        assert corpus.store("k1", entry)
        assert corpus.lookup("k1") == entry
        assert corpus.lookup("k1", n_nodes=2) == entry
        assert corpus.lookup("absent") is None

    def test_reopen_preserves_entries(self, tmp_path):
        root = tmp_path / "c"
        open_corpus(root).store("k1", entry_for(directive=3))
        reopened = open_corpus(root)
        assert reopened.lookup("k1") == entry_for(directive=3)
        assert reopened.stats()["quarantined"] == 0

    def test_last_write_wins_across_reopen(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root)
        corpus.store("k1", entry_for(blocks=(1,)))
        corpus.store("k1", entry_for(blocks=(1, 2, 3)))
        assert open_corpus(root).lookup("k1") == entry_for(blocks=(1, 2, 3))

    def test_placement_mismatch_is_a_miss(self, tmp_path):
        corpus = open_corpus(tmp_path / "c")
        corpus.store("k1", entry_for(n_nodes=2))
        assert corpus.lookup("k1", n_nodes=4) is None
        assert corpus.stats()["misses"] == 1

    def test_identical_restore_does_not_grow_segments(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root)
        corpus.store("k1", entry_for())
        size = sum(p.stat().st_size for p in root.glob("seg-*.log"))
        for _ in range(5):
            assert corpus.store("k1", entry_for())
        assert sum(p.stat().st_size for p in root.glob("seg-*.log")) == size


class TestBudgets:
    def test_lru_eviction_by_entry_count(self, tmp_path):
        corpus = open_corpus(tmp_path / "c", max_entries=2)
        corpus.store("a", entry_for(directive=0))
        corpus.store("b", entry_for(directive=1))
        corpus.lookup("a")  # refresh: b is now least recently used
        corpus.store("c", entry_for(directive=2))
        assert corpus.lookup("b") is None
        assert corpus.lookup("a") is not None
        assert corpus.lookup("c") is not None
        assert corpus.stats()["evictions"] == 1

    def test_reopen_respects_entry_budget(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root, max_entries=16)
        for i in range(4):
            corpus.store(f"k{i}", entry_for(directive=i))
        reopened = open_corpus(root, max_entries=2)
        kept = dict(reopened.entries())
        assert set(kept) == {"k2", "k3"}  # most recently stored survive

    def test_size_budget_triggers_compaction(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root, max_bytes=4096)
        for i in range(40):
            corpus.store("hot", entry_for(blocks=tuple(range(i % 7 + 1))))
        # dead frames were rewritten away; the one live entry survives
        assert sum(p.stat().st_size for p in root.glob("seg-*.log")) < 4096
        assert open_corpus(root).lookup("hot") is not None

    def test_compact_keeps_entries_and_drops_dead_frames(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root)
        for i in range(10):
            corpus.store("k", entry_for(blocks=(i,)))
        corpus.store("other", entry_for(directive=9))
        before = sum(p.stat().st_size for p in root.glob("seg-*.log"))
        assert corpus.compact() == 2
        after = sum(p.stat().st_size for p in root.glob("seg-*.log"))
        assert after < before
        reopened = open_corpus(root)
        assert reopened.lookup("k") == entry_for(blocks=(9,))
        assert reopened.lookup("other") == entry_for(directive=9)


class TestValidation:
    def test_validate_accepts_good_entry(self):
        assert validate_entry(entry_for()) == []

    @pytest.mark.parametrize("mutate, needle", [
        (lambda e: e.update(n_nodes=0), "n_nodes"),
        (lambda e: e.update(records="nope"), "records"),
        (lambda e: e["records"][0].update(directive=-1), "directive"),
        (lambda e: e["records"][0].update(cooldown=-2), "cooldown"),
        (lambda e: e["records"][0]["entries"][0].update(kind="evict"), "kind"),
        (lambda e: e["records"][0]["entries"][0].update(block=-5), "block"),
        (lambda e: e["records"][0]["entries"][0].update(readers=[7]),
         "readers"),
        (lambda e: e["records"][0]["entries"][0].update(writer=9), "writer"),
        (lambda e: e["records"][0]["entries"][0].update(readers=[]),
         "READ with no readers"),
        (lambda e: e["records"][0]["entries"][0].update(pre_conflict="x"),
         "pre_conflict"),
    ])
    def test_validate_rejects(self, mutate, needle):
        entry = entry_for()
        mutate(entry)
        problems = validate_entry(entry)
        assert problems and any(needle in p for p in problems)

    def test_store_rejects_invalid_entry(self, tmp_path):
        corpus = open_corpus(tmp_path / "c")
        bad = entry_for()
        bad["records"][0]["entries"][0]["readers"] = [99]
        assert not corpus.store("k", bad)
        assert corpus.lookup("k") is None
        assert corpus.stats()["quarantined"] == 1
        assert corpus.stats()["quarantine_files"] == 1


class TestDamage:
    def test_torn_tail_is_truncated_and_quarantined(self, tmp_path):
        root = tmp_path / "c"
        open_corpus(root).store("k", entry_for())
        (segment,) = root.glob("seg-*.log")
        good = segment.read_bytes()
        segment.write_bytes(good + b"\x00\x00\x01\xffhalf a frame")
        reopened = open_corpus(root)
        assert reopened.lookup("k") == entry_for()
        assert reopened.stats()["recovered_tails"] == 1
        assert segment.read_bytes() == good  # truncated back to the boundary

    def test_flipped_byte_costs_one_record_not_the_suffix(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        frames = [_header_frame(),
                  _frame({"op": "put", "gen": 1, "key": "a",
                          "entry": entry_for(directive=0)}),
                  _frame({"op": "put", "gen": 2, "key": "b",
                          "entry": entry_for(directive=1)})]
        # flip a payload byte inside the *first* put frame
        broken = bytearray(frames[1])
        broken[20] ^= 0xFF
        (root / "seg-000001.log").write_bytes(
            frames[0] + bytes(broken) + frames[2])
        corpus = open_corpus(root)
        assert corpus.lookup("a") is None
        assert corpus.lookup("b") == entry_for(directive=1)
        assert corpus.stats()["quarantined"] == 1
        assert corpus.stats()["recovered_tails"] == 0

    def test_foreign_segment_is_skipped_untouched(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        foreign = (_frame({"magic": "repro.corpus", "version": 999})
                   + _frame({"op": "put", "gen": 1, "key": "k",
                             "entry": entry_for()}))
        (root / "seg-000001.log").write_bytes(foreign)
        corpus = open_corpus(root)
        assert corpus.lookup("k") is None
        assert corpus.stats()["skipped_segments"] == 1
        # never modified, never deleted: it may belong to a future build
        assert (root / "seg-000001.log").read_bytes() == foreign
        corpus.store("new", entry_for())
        corpus.compact()
        assert (root / "seg-000001.log").read_bytes() == foreign

    def test_scrub_removes_quarantine_files(self, tmp_path):
        root = tmp_path / "c"
        open_corpus(root).store("k", entry_for())
        (segment,) = root.glob("seg-*.log")
        segment.write_bytes(segment.read_bytes() + b"\xff\xff")
        corpus = open_corpus(root)
        assert corpus.stats()["quarantine_files"] == 1
        assert corpus.scrub() == 1
        assert corpus.stats()["quarantine_files"] == 0


class TestDegradation:
    def test_open_on_a_file_degrades_to_null(self, tmp_path):
        path = tmp_path / "not-a-dir"
        path.write_text("hello")
        corpus = open_corpus(path)
        assert isinstance(corpus, NullCorpus)
        assert not corpus.ok
        assert corpus.lookup("k") is None
        assert not corpus.store("k", entry_for())
        assert corpus.compact() == 0 and corpus.scrub() == 0
        assert corpus.stats()["ok"] is False

    def test_store_failure_never_raises(self, tmp_path):
        root = tmp_path / "c"
        corpus = open_corpus(root)
        corpus.store("k", entry_for())
        shutil.rmtree(root)  # rip the directory out from under the corpus
        assert not corpus.store("k2", entry_for(directive=1))
        assert corpus.stats()["failures"] >= 1
        assert corpus.last_error is not None
