"""Tests for semantic checks and access-pattern analysis (paper §4.2)."""

import pytest

from repro.cstar.access import Access, AccessKind, Locality
from repro.cstar.parser import parse
from repro.cstar.sema import analyze
from repro.util import CompileError


def summaries(src):
    info = analyze(parse(src))
    return {name: fi.summary for name, fi in info.functions.items()}


HOME = Locality.HOME
NONHOME = Locality.NON_HOME
R = AccessKind.READ
W = AccessKind.WRITE


class TestClassification:
    def test_own_element_write_is_home(self):
        s = summaries(
            "aggregate G(float)[][];"
            "parallel f(G g parallel) { g[#0][#1] = 1.0; } main(){}"
        )["f"]
        assert Access("g", W, HOME) in s

    def test_own_element_read_is_home(self):
        s = summaries(
            "aggregate G(float)[];"
            "parallel f(G g parallel) { g[#0] = g[#0] + 1.0; } main(){}"
        )["f"]
        assert Access("g", R, HOME) in s
        assert Access("g", W, HOME) in s

    def test_neighbor_read_is_non_home(self):
        """Even a simple +1 stencil is conservatively unstructured."""
        s = summaries(
            "aggregate G(float)[];"
            "parallel f(G g parallel) { g[#0] = g[#0 + 1]; } main(){}"
        )["f"]
        assert Access("g", R, NONHOME) in s
        assert Access("g", W, HOME) in s

    def test_other_aggregate_is_non_home(self):
        """Figure 3's update: (primal, Write, Home), (dual, Read, Non-Home)."""
        s = summaries(
            "aggregate Mesh(float)[];"
            "parallel update(Mesh primal parallel, Mesh dual) {"
            "  primal[#0] = dual[#0];"
            "} main(){}"
        )["update"]
        assert list(s) == [
            Access("dual", R, NONHOME),
            Access("primal", W, HOME),
        ]

    def test_indirection_is_non_home(self):
        s = summaries(
            "aggregate G(float)[]; aggregate Idx(int)[];"
            "parallel gather(G g parallel, G src, Idx ind) {"
            "  g[#0] = src[ind[#0]];"
            "} main(){}"
        )["gather"]
        assert Access("src", R, NONHOME) in s
        assert Access("ind", R, NONHOME) in s

    def test_unstructured_write(self):
        s = summaries(
            "aggregate G(float)[]; aggregate Idx(int)[];"
            "parallel scatter(Idx ind parallel, G g) { g[ind[#0]] = 1.0; } main(){}"
        )["scatter"]
        assert Access("g", W, NONHOME) in s

    def test_swapped_positions_are_non_home(self):
        s = summaries(
            "aggregate G(float)[][];"
            "parallel f(G g parallel) { g[#1][#0] = 1.0; } main(){}"
        )["f"]
        assert Access("g", W, NONHOME) in s

    def test_partial_own_indices_non_home(self):
        s = summaries(
            "aggregate G(float)[][];"
            "parallel f(G g parallel) { g[#0][0] = 1.0; } main(){}"
        )["f"]
        assert Access("g", W, NONHOME) in s

    def test_home_only_predicate(self):
        s = summaries(
            "aggregate G(float)[];"
            "parallel f(G g parallel) { g[#0] = 2.0; } main(){}"
        )["f"]
        assert s.is_home_only()

    def test_summary_queries(self):
        s = summaries(
            "aggregate G(float)[];"
            "parallel f(G g parallel, G o) { g[#0] = o[#0+1]; o[#0] = 1.0; } main(){}"
        )["f"]
        assert s.owner_writes() == {"g"}
        assert s.unstructured_reads() == {"o"}
        assert s.unstructured_writes() == {"o"}  # o is not the parallel param


class TestSemanticErrors:
    def test_pos_beyond_rank(self):
        with pytest.raises(CompileError):
            summaries(
                "aggregate G(float)[];"
                "parallel f(G g parallel) { g[#1] = 1.0; } main(){}"
            )

    def test_wrong_subscript_count(self):
        with pytest.raises(CompileError):
            summaries(
                "aggregate G(float)[][];"
                "parallel f(G g parallel) { g[#0] = 1.0; } main(){}"
            )

    def test_undefined_variable(self):
        with pytest.raises(CompileError):
            summaries(
                "aggregate G(float)[];"
                "parallel f(G g parallel) { g[#0] = nothere; } main(){}"
            )

    def test_aggregate_without_subscript(self):
        with pytest.raises(CompileError):
            summaries(
                "aggregate G(float)[];"
                "parallel f(G g parallel, G o) { g[#0] = o; } main(){}"
            )

    def test_unknown_param_type(self):
        with pytest.raises(CompileError):
            summaries("parallel f(Bogus g parallel) { g[#0] = 1.0; } main(){}")

    def test_scalar_parallel_param_rejected(self):
        with pytest.raises(CompileError):
            summaries("parallel f(float x parallel) { } main(){}")


class TestMainChecks:
    def test_element_access_in_main_rejected(self):
        with pytest.raises(CompileError):
            analyze(parse(
                "aggregate G(float)[];"
                "parallel f(G g parallel) { g[#0] = 1.0; }"
                "main() { G a(4); let x = a[0]; }"
            ))

    def test_call_arity_checked(self):
        with pytest.raises(CompileError):
            analyze(parse(
                "aggregate G(float)[];"
                "parallel f(G g parallel) { g[#0] = 1.0; }"
                "main() { G a(4); f(a, a); }"
            ))

    def test_call_aggregate_type_checked(self):
        with pytest.raises(CompileError):
            analyze(parse(
                "aggregate G(float)[]; aggregate H(float)[];"
                "parallel f(G g parallel) { g[#0] = 1.0; }"
                "main() { H b(4); f(b); }"
            ))

    def test_scalar_arg_can_be_expression(self):
        analyze(parse(
            "aggregate G(float)[];"
            "parallel f(G g parallel, float v) { g[#0] = v; }"
            "main() { G a(4); let x = 2; f(a, x * 3 + 1); }"
        ))

    def test_undefined_scalar_rejected(self):
        with pytest.raises(CompileError):
            analyze(parse("main() { let x = y + 1; }"))

    def test_dimension_count_checked(self):
        with pytest.raises(CompileError):
            analyze(parse(
                "aggregate G(float)[][];"
                "parallel f(G g parallel) { g[#0][#1] = 1.0; }"
                "main() { G a(4); }"
            ))
