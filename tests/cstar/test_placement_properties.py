"""Property-based tests of the dataflow and placement passes over random
flow trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cstar.access import Access, AccessKind, AccessSummary, Locality
from repro.cstar.dataflow import ReachingUnstructured
from repro.cstar.flow import (
    FlowCall,
    FlowGroup,
    FlowIf,
    FlowLoop,
    FlowSeq,
    FlowStmt,
    iter_calls,
)
from repro.cstar.placement import place_directives

AGGS = ["a", "b", "c"]
H, NH = Locality.HOME, Locality.NON_HOME
R, W = AccessKind.READ, AccessKind.WRITE

access_strategy = st.tuples(
    st.sampled_from(AGGS),
    st.sampled_from([R, W]),
    st.sampled_from([H, NH]),
).map(lambda t: Access(*t))

call_strategy = st.lists(access_strategy, max_size=4).map(
    lambda accs: FlowCall(function="f", summary=AccessSummary("f", accs))
)

leaf = st.one_of(call_strategy, st.builds(FlowStmt))


def trees(depth: int):
    if depth == 0:
        return leaf
    sub = trees(depth - 1)
    seq = st.lists(sub, min_size=0, max_size=3).map(FlowSeq)
    return st.one_of(
        leaf,
        seq.map(lambda s: FlowLoop(body=s)),
        st.tuples(seq, seq).map(lambda ts: FlowIf(then_body=ts[0], else_body=ts[1])),
        seq,
    )


tree_strategy = st.lists(trees(2), min_size=1, max_size=4).map(FlowSeq)


class TestDataflowProperties:
    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_fixpoint_terminates_and_is_complete(self, tree):
        analysis = ReachingUnstructured(tree)
        assert analysis.iterations < 30
        for call in iter_calls(tree):
            assert call.site_id in analysis.call_in

    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_reaching_only_generated_aggregates(self, tree):
        """An aggregate with no unstructured access anywhere never has the
        reaching property at any call."""
        analysis = ReachingUnstructured(tree)
        generated = set()
        for call in iter_calls(tree):
            generated |= call.summary.unstructured()
        for call in iter_calls(tree):
            assert analysis.reaching_set(call) <= generated

    @given(tree_strategy)
    @settings(max_examples=60, deadline=None)
    def test_straightline_prefix_property(self, tree):
        """The first call in the program can only be reached by nothing
        (entry IN is empty, and it is the first transfer applied)."""
        calls = list(iter_calls(tree))
        if not calls:
            return
        analysis = ReachingUnstructured(tree)
        first = calls[0]
        # the first call *in tree order* may still be inside a loop (back
        # edge feeds it), so only assert when it is at top level, before
        # any loop
        for child in tree.children:
            if isinstance(child, FlowCall):
                assert analysis.reaching_set(child) == set() or True
                # the very first top-level call truly has empty IN
                assert analysis.reaching_set(child) == set()
            break


class TestPlacementProperties:
    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_every_unstructured_call_is_covered(self, tree):
        res = place_directives(tree)
        for call in iter_calls(res.root):
            if call.summary.unstructured():
                assert res.group_of(call.site_id) is not None

    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_groups_partition_their_sites(self, tree):
        res = place_directives(tree)
        seen: set[int] = set()
        for g in res.groups:
            for s in g.site_ids:
                assert s not in seen, "site in two groups"
                seen.add(s)

    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_groups_never_nest(self, tree):
        res = place_directives(tree)

        def walk(node, inside):
            if isinstance(node, FlowGroup):
                assert not inside
                walk(node.body, True)
            elif isinstance(node, FlowSeq):
                for c in node.children:
                    walk(c, inside)
            elif isinstance(node, FlowLoop):
                walk(node.body, inside)
            elif isinstance(node, FlowIf):
                walk(node.then_body, inside)
                walk(node.else_body, inside)

        walk(res.root, False)

    @given(tree_strategy)
    @settings(max_examples=80, deadline=None)
    def test_placement_preserves_call_order(self, tree):
        before = [c.site_id for c in iter_calls(tree)]
        res = place_directives(tree)
        after = [c.site_id for c in iter_calls(res.root)]
        assert before == after

    @given(tree_strategy)
    @settings(max_examples=60, deadline=None)
    def test_home_only_programs_get_no_groups(self, tree):
        if any(c.summary.unstructured() for c in iter_calls(tree)):
            return
        res = place_directives(tree)
        assert res.groups == []
