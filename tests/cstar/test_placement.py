"""Tests for directive placement, coalescing, and loop hoisting (paper §4.3),
including a fixture reproducing the Barnes CFG of the paper's Figure 4."""

import pytest

from repro.cstar.access import Access, AccessKind, AccessSummary, Locality
from repro.cstar.flow import (
    FlowCall,
    FlowGroup,
    FlowIf,
    FlowLoop,
    FlowSeq,
    FlowStmt,
    iter_calls,
)
from repro.cstar.placement import place_directives

H, NH = Locality.HOME, Locality.NON_HOME
R, W = AccessKind.READ, AccessKind.WRITE


def call(fn, *accesses):
    return FlowCall(function=fn, summary=AccessSummary(fn, accesses))


class TestPlacementRules:
    def test_rule2_unstructured_call_needs_schedule(self):
        c = call("gather", Access("x", R, NH))
        res = place_directives(FlowSeq([c]))
        assert res.needs_schedule[c.site_id]
        assert res.group_of(c.site_id) is not None

    def test_rule1_owner_write_reached_by_unstructured(self):
        reader = call("force", Access("b", R, NH))
        writer = call("update", Access("b", W, H))
        res = place_directives(FlowSeq([reader, writer]))
        assert res.needs_schedule[writer.site_id]

    def test_owner_write_not_reached_needs_nothing(self):
        writer = call("init", Access("b", W, H))
        reader = call("force", Access("b", R, NH))
        res = place_directives(FlowSeq([writer, reader]))
        assert not res.needs_schedule[writer.site_id]
        assert res.group_of(writer.site_id) is None

    def test_pure_home_program_gets_no_directives(self):
        c1 = call("a", Access("x", W, H))
        c2 = call("b", Access("x", R, H), Access("x", W, H))
        res = place_directives(FlowSeq([c1, c2]))
        assert res.groups == []

    def test_different_aggregates_do_not_trigger_rule1(self):
        reader = call("force", Access("tree", R, NH))
        writer = call("update", Access("bodies", W, H))
        res = place_directives(FlowSeq([reader, writer]))
        assert not res.needs_schedule[writer.site_id]


class TestCoalescing:
    def test_adjacent_home_phases_coalesce(self):
        # two distinct aggregates so the first owner-write's kill does not
        # remove the second's rule-1 trigger
        reader = call("force", Access("b", R, NH), Access("c", R, NH))
        w1 = call("u1", Access("b", W, H))
        w2 = call("u2", Access("c", W, H))
        tree = FlowSeq([FlowLoop(body=FlowSeq([reader, w1, w2]))])
        res = place_directives(tree)
        g1 = res.group_of(w1.site_id)
        g2 = res.group_of(w2.site_id)
        assert g1 is not None and g1 is g2  # one schedule for both

    def test_second_write_to_same_aggregate_needs_nothing(self):
        """The first owner write killed all remote copies; the second write
        communicates nothing and gets no directive."""
        reader = call("force", Access("b", R, NH))
        w1 = call("u1", Access("b", W, H))
        w2 = call("u2", Access("b", W, H))
        tree = FlowSeq([FlowLoop(body=FlowSeq([reader, w1, w2]))])
        res = place_directives(tree)
        assert res.group_of(w1.site_id) is not None
        assert not res.needs_schedule[w2.site_id]

    def test_unstructured_call_gets_its_own_group(self):
        reader = call("force", Access("b", R, NH))
        w1 = call("u1", Access("b", W, H))
        tree = FlowSeq([FlowLoop(body=FlowSeq([reader, w1]))])
        res = place_directives(tree)
        assert res.group_of(reader.site_id) is not res.group_of(w1.site_id)

    def test_sequential_stmts_absorbed_into_group(self):
        reader = call("force", Access("b", R, NH), Access("c", R, NH))
        w1 = call("u1", Access("b", W, H))
        w2 = call("u2", Access("c", W, H))
        tree = FlowSeq([FlowLoop(body=FlowSeq([reader, w1, FlowStmt(), w2]))])
        res = place_directives(tree)
        assert res.group_of(w1.site_id) is res.group_of(w2.site_id)

    def test_home_call_without_schedule_absorbed(self):
        reader = call("force", Access("b", R, NH), Access("c", R, NH))
        w1 = call("u1", Access("b", W, H))
        other = call("local", Access("d", W, H))  # needs nothing
        w2 = call("u2", Access("c", W, H))
        tree = FlowSeq([FlowLoop(body=FlowSeq([reader, w1, other, w2]))])
        res = place_directives(tree)
        assert res.group_of(w1.site_id) is res.group_of(w2.site_id)

    def test_groups_never_nest(self):
        reader = call("force", Access("b", R, NH))
        w1 = call("u1", Access("b", W, H))
        res = place_directives(FlowSeq([FlowLoop(body=FlowSeq([reader, w1]))]))

        def check(node, inside):
            if isinstance(node, FlowGroup):
                assert not inside, "nested FlowGroup"
                check(node.body, True)
            elif isinstance(node, FlowSeq):
                for c in node.children:
                    check(c, inside)
            elif isinstance(node, FlowLoop):
                check(node.body, inside)
            elif isinstance(node, FlowIf):
                check(node.then_body, inside)
                check(node.else_body, inside)

        check(res.root, False)


class TestHoisting:
    def test_home_only_loop_hoisted(self):
        """The center-of-mass case: a loop of home-only calls that need a
        schedule gets one directive before the loop, not one per iteration."""
        scatter = call("build", Access("tree", W, NH))
        com = call("center_of_mass", Access("tree", W, H), Access("tree", R, H))
        tree = FlowSeq([
            FlowLoop(body=FlowSeq([
                scatter,
                FlowLoop(body=FlowSeq([com])),
            ]))
        ])
        res = place_directives(tree)
        g = res.group_of(com.site_id)
        assert g is not None and g.hoisted

    def test_loop_with_unstructured_calls_not_hoisted(self):
        inner = call("gather", Access("x", R, NH))
        tree = FlowSeq([FlowLoop(body=FlowSeq([inner]))])
        res = place_directives(tree)
        g = res.group_of(inner.site_id)
        assert g is not None and not g.hoisted

    def test_placement_idempotence_guard(self):
        c = call("gather", Access("x", R, NH))
        res = place_directives(FlowSeq([c]))
        from repro.util import CompileError

        with pytest.raises(CompileError):
            place_directives(res.root)


class TestBarnesFigure4:
    """The paper's Figure 4: the Barnes main loop with four placed phases,
    the center-of-mass loop's schedule hoisted (its 'phase 3')."""

    def build(self):
        # main loop: force computation (unstructured tree AND body reads —
        # a body's force terms come from other processors' bodies at tree
        # leaves — plus owner writes of its own accelerations); body update
        # (owner writes); tree build (unstructured tree writes); center-of-
        # mass loop (home-only tree accesses).
        self.force = call(
            "compute_forces",
            Access("tree", R, NH),
            Access("bodies", R, NH),
            Access("bodies", W, H),
        )
        self.update = call(
            "update_bodies", Access("bodies", R, H), Access("bodies", W, H)
        )
        self.build_tree = call(
            "build_tree", Access("tree", W, NH), Access("bodies", R, NH)
        )
        self.com = call(
            "center_of_mass", Access("tree", R, H), Access("tree", W, H)
        )
        return FlowSeq([
            FlowLoop(body=FlowSeq([
                self.force,
                self.update,
                self.build_tree,
                FlowLoop(body=FlowSeq([self.com])),
            ]))
        ])

    def test_four_phases_placed(self):
        res = place_directives(self.build())
        assert len(res.groups) == 4

    def test_each_call_covered(self):
        res = place_directives(self.build())
        for c in (self.force, self.update, self.build_tree, self.com):
            assert res.group_of(c.site_id) is not None

    def test_com_phase_hoisted_out_of_inner_loop(self):
        res = place_directives(self.build())
        g = res.group_of(self.com.site_id)
        assert g.hoisted

    def test_update_needed_by_rule1(self):
        res = place_directives(self.build())
        assert res.needs_schedule[self.update.site_id]
        # compute_forces' unstructured reads of bodies leave remote copies
        # that update's owner writes must invalidate (rule 1)
        assert "bodies" in res.analysis.reaching_set(self.update)
        assert self.update.summary.is_home_only()

    def test_groups_are_distinct_directives(self):
        res = place_directives(self.build())
        ids = [g.directive.id for g in res.groups]
        assert len(set(ids)) == 4
