"""Cross-frontend consistency: the textual compiler and the embedded
frontend must produce the same analysis for equivalent programs."""

import numpy as np
import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.cstar.embedded import EmbeddedProgram, access
from repro.cstar.flow import iter_calls
from repro.util import MachineConfig

N = 8
ITERS = 3

TEXTUAL = f"""
aggregate Vec(float)[];

parallel gather(Vec dst parallel, Vec src) {{
  dst[#0] = 0.5 * (src[#0] + 1.0);
}}

parallel bump(Vec v parallel) {{
  v[#0] = v[#0] + 1.0;
}}

main() {{
  Vec a({N});
  Vec b({N});
  for (i = 0; i < {ITERS}; i = i + 1) {{
    gather(b, a);
    bump(a);
  }}
}}
"""
# NOTE: src[#0] in `gather` is NOT the parallel aggregate's own element
# (dst is the parallel param), so it is a Non-Home read — same as the
# embedded declaration below.


def embedded_equivalent():
    def setup(env):
        env.runtime.aggregate("a", (N,))
        env.runtime.aggregate("b", (N,))

    prog = EmbeddedProgram("equiv", setup)

    def gather(ctx, env):
        i = ctx.pos[0]
        v = ctx.read(env.agg("a"), (i,))
        ctx.charge(2)
        ctx.write(env.agg("b"), (i,), 0.5 * (v + 1.0))

    def bump(ctx, env):
        i = ctx.pos[0]
        v = ctx.read(env.agg("a"), (i,))
        ctx.charge(1)
        ctx.write(env.agg("a"), (i,), v + 1.0)

    prog.parallel("gather", [
        access("a", "r", "non-home"),
        access("b", "w", "home"),
    ], gather)
    prog.parallel("bump", [
        access("a", "r", "home"),
        access("a", "w", "home"),
    ], bump)
    prog.build(prog.loop(ITERS,
                         prog.call("gather", over="b", snapshot=["a"]),
                         prog.call("bump", over="a")))
    return prog


class TestAnalysisAgreement:
    def test_same_number_of_groups(self):
        textual = compile_source(TEXTUAL)
        embedded = embedded_equivalent()
        assert len(textual.placement.groups) == len(embedded.compile().groups)

    def test_same_needs_per_function(self):
        textual = compile_source(TEXTUAL)
        embedded = embedded_equivalent()

        def needs_by_fn(placement, root):
            return {
                c.function: placement.needs_schedule[c.site_id]
                for c in iter_calls(root)
            }

        t = needs_by_fn(textual.placement, textual.flow)
        e = needs_by_fn(embedded.compile(), embedded.main)
        assert t == e

    def test_same_reaching_sets(self):
        textual = compile_source(TEXTUAL)
        embedded = embedded_equivalent()

        def reaching_by_fn(placement, root, rename=None):
            out = {}
            for c in iter_calls(root):
                names = placement.analysis.reaching_set(c)
                out[c.function] = sorted(names)
            return out

        assert (reaching_by_fn(textual.placement, textual.flow)
                == reaching_by_fn(embedded.compile(), embedded.main))


class TestValueAgreement:
    def test_both_frontends_compute_same_values(self):
        textual = compile_source(TEXTUAL)
        m1 = make_machine(MachineConfig(n_nodes=4), "predictive")
        e1 = textual.run(m1, optimized=True)

        embedded = embedded_equivalent()
        m2 = make_machine(MachineConfig(n_nodes=4), "predictive")
        e2 = embedded.run(m2, optimized=True)

        np.testing.assert_array_equal(e1.agg("a").data, e2.agg("a").data)
        np.testing.assert_array_equal(e1.agg("b").data, e2.agg("b").data)

    def test_same_miss_counts(self):
        """Identical access patterns must produce identical protocol
        behaviour, whichever frontend produced them."""
        textual = compile_source(TEXTUAL)
        m1 = make_machine(MachineConfig(n_nodes=4), "predictive")
        textual.run(m1, optimized=True)

        embedded = embedded_equivalent()
        m2 = make_machine(MachineConfig(n_nodes=4), "predictive")
        embedded.run(m2, optimized=True)

        assert m1.stats.misses == m2.stats.misses
