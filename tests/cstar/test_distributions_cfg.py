"""Remaining corners: Tiled2D geometry, CFG orderings, flow helpers."""

import pytest

from repro.cstar.access import Access, AccessKind, AccessSummary, Locality
from repro.cstar.cfg import build_cfg
from repro.cstar.flow import (
    FlowCall,
    FlowLoop,
    FlowSeq,
    collect_aggregates,
    iter_calls,
)
from repro.cstar.runtime import Tiled2D


class TestTiled2D:
    def test_square_grid_for_square_node_count(self):
        d = Tiled2D(rows=8, cols=8, nodes=4)
        assert d._grid() == (2, 2)

    def test_rectangular_grid(self):
        d = Tiled2D(rows=8, cols=8, nodes=8)
        gr, gc = d._grid()
        assert gr * gc == 8

    def test_tiles_are_contiguous_rectangles(self):
        d = Tiled2D(rows=8, cols=8, nodes=4)
        # the four quadrants map to four distinct nodes
        corners = {
            d.owner((0, 0)), d.owner((0, 7)), d.owner((7, 0)), d.owner((7, 7))
        }
        assert len(corners) == 4

    def test_every_cell_has_valid_owner(self):
        d = Tiled2D(rows=5, cols=7, nodes=6)
        for i in range(5):
            for j in range(7):
                assert 0 <= d.owner((i, j)) < 6

    def test_validate(self):
        from repro.util import ConfigError

        with pytest.raises(ConfigError):
            Tiled2D(rows=4, cols=4, nodes=2).validate((5, 4))


def call(fn="f", *accesses):
    return FlowCall(function=fn, summary=AccessSummary(fn, accesses))


class TestCfgOrderings:
    def test_reverse_postorder_visits_all_reachable(self):
        a, b_ = call("a"), call("b")
        tree = FlowSeq([a, FlowLoop(body=FlowSeq([b_]))])
        cfg, _ = build_cfg(tree)
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry
        assert len({bb.id for bb in order}) == len(order)
        assert cfg.exit in order

    def test_predecessor_precedes_in_rpo_for_acyclic(self):
        a, b_ = call("a"), call("b")
        cfg, blocks = build_cfg(FlowSeq([a, b_]))
        order = {bb.id: i for i, bb in enumerate(cfg.reverse_postorder())}
        assert order[blocks[a.site_id].id] < order[blocks[b_.site_id].id]

    def test_edge_is_idempotent(self):
        cfg, _ = build_cfg(FlowSeq([]))
        x, y = cfg.new_block(), cfg.new_block()
        cfg.edge(x, y)
        cfg.edge(x, y)
        assert x.succs.count(y) == 1
        assert y.preds.count(x) == 1


class TestFlowHelpers:
    def test_collect_aggregates_first_seen_order(self):
        tree = FlowSeq([
            call("f", Access("zeta", AccessKind.READ, Locality.NON_HOME)),
            call("g", Access("alpha", AccessKind.WRITE, Locality.HOME)),
            call("h", Access("zeta", AccessKind.WRITE, Locality.HOME)),
        ])
        assert collect_aggregates(tree) == ["zeta", "alpha"]

    def test_iter_calls_covers_nesting(self):
        inner = call("inner")
        tree = FlowSeq([FlowLoop(body=FlowSeq([FlowLoop(body=FlowSeq([inner]))]))])
        assert [c.function for c in iter_calls(tree)] == ["inner"]

    def test_site_ids_unique(self):
        calls = [call(f"f{i}") for i in range(10)]
        ids = [c.site_id for c in calls]
        assert len(set(ids)) == 10
