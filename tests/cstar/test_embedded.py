"""Tests for the embedded frontend and the flow-tree executor (driver)."""

import numpy as np
import pytest

from repro.core import make_machine
from repro.cstar.driver import Env, execute
from repro.cstar.embedded import EmbeddedProgram, LoopSpec, access
from repro.cstar.flow import FlowGroup, FlowSeq, iter_calls
from repro.util import CompileError, MachineConfig, SimulationError


def simple_program(iterations=3, n=8):
    """Producer-consumer: 'dst' gathers from 'src', then 'src' updated."""

    def setup(env):
        env.runtime.aggregate("src", (n,))
        env.runtime.aggregate("dst", (n,))
        env.agg("src").data[:] = np.arange(n, dtype=float)

    prog = EmbeddedProgram("simple", setup)

    def gather(ctx, env):
        i = ctx.pos[0]
        src, dst = env.agg("src"), env.agg("dst")
        v = ctx.read(src, ((i + 1) % n,))
        ctx.charge(2)
        ctx.write(dst, (i,), v * 2.0)

    def bump(ctx, env):
        i = ctx.pos[0]
        src = env.agg("src")
        v = ctx.read(src, (i,))
        ctx.write(src, (i,), v + 1.0)

    prog.parallel("gather", [
        access("src", "r", "non-home"),
        access("dst", "w", "home"),
    ], gather)
    prog.parallel("bump", [
        access("src", "r", "home"),
        access("src", "w", "home"),
    ], bump)
    prog.build(
        prog.loop(iterations,
                  prog.call("gather", over="dst", snapshot=["src"]),
                  prog.call("bump", over="src")),
    )
    return prog


class TestDeclarations:
    def test_duplicate_function_rejected(self):
        prog = EmbeddedProgram("x", lambda env: None)
        prog.parallel("f", [], lambda ctx, env: None)
        with pytest.raises(CompileError):
            prog.parallel("f", [], lambda ctx, env: None)

    def test_call_to_undeclared_rejected(self):
        prog = EmbeddedProgram("x", lambda env: None)
        with pytest.raises(CompileError):
            prog.call("ghost", over="a")

    def test_compile_without_main_rejected(self):
        prog = EmbeddedProgram("x", lambda env: None)
        with pytest.raises(CompileError):
            prog.compile()

    def test_compile_is_cached(self):
        prog = simple_program()
        assert prog.compile() is prog.compile()

    def test_access_shorthand(self):
        from repro.cstar.access import AccessKind, Locality

        a = access("x", "r", "non-home")
        assert a.kind is AccessKind.READ
        assert a.locality is Locality.NON_HOME
        b = access("x", "w", "home")
        assert b.kind is AccessKind.WRITE
        assert b.locality is Locality.HOME


class TestPlacementIntegration:
    def test_two_directives_for_producer_consumer(self):
        prog = simple_program()
        placement = prog.compile()
        assert len(placement.groups) == 2

    def test_groups_in_placed_tree(self):
        prog = simple_program()
        root = prog.compile().root

        def count_groups(node):
            if isinstance(node, FlowGroup):
                return 1 + count_groups(node.body)
            if isinstance(node, FlowSeq):
                return sum(count_groups(c) for c in node.children)
            body = getattr(node, "body", None)
            return count_groups(body) if body is not None else 0

        assert count_groups(root) == 2

    def test_unoptimized_run_ignores_directives(self):
        prog = simple_program()
        m = make_machine(MachineConfig(n_nodes=2), "predictive")
        prog.run(m, optimized=False)
        assert all(len(s) == 0 for s in m.protocol.schedules.values())


class TestExecution:
    def test_values(self):
        prog = simple_program(iterations=1, n=4)
        m = make_machine(MachineConfig(n_nodes=2), "stache")
        env = prog.run(m, optimized=False)
        # gather reads pre-phase src [0,1,2,3]: dst[i] = 2*src[i+1 mod 4]
        assert list(env.agg("dst").data) == [2.0, 4.0, 6.0, 0.0]
        # bump ran after
        assert list(env.agg("src").data) == [1.0, 2.0, 3.0, 4.0]

    def test_optimized_and_unoptimized_values_agree(self):
        e1 = simple_program().run(
            make_machine(MachineConfig(n_nodes=2), "stache"), optimized=False
        )
        e2 = simple_program().run(
            make_machine(MachineConfig(n_nodes=2), "predictive"), optimized=True
        )
        np.testing.assert_array_equal(e1.agg("dst").data, e2.agg("dst").data)
        np.testing.assert_array_equal(e1.agg("src").data, e2.agg("src").data)

    def test_loop_with_callable_count(self):
        ticks = []
        prog = EmbeddedProgram("x", lambda env: env.state.update(k=0))
        prog.build(prog.loop(lambda env: env.params["n"],
                             prog.stmt(lambda env: ticks.append(1))))
        prog.run(make_machine(MachineConfig(n_nodes=2), "stache"),
                 params={"n": 5})
        assert len(ticks) == 5

    def test_loop_with_condition(self):
        prog = EmbeddedProgram("x", lambda env: env.state.update(k=3))

        def dec(env):
            env.state["k"] -= 1

        prog.build(prog.loop(LoopSpec(cond=lambda env: env.state["k"] > 0),
                             prog.stmt(dec)))
        env = prog.run(make_machine(MachineConfig(n_nodes=2), "stache"))
        assert env.state["k"] == 0

    def test_if_branches(self):
        taken = []
        prog = EmbeddedProgram("x", lambda env: None)
        prog.build(
            prog.if_(lambda env: env.params["flag"],
                     [prog.stmt(lambda env: taken.append("then"))],
                     [prog.stmt(lambda env: taken.append("else"))]),
        )
        prog.run(make_machine(MachineConfig(n_nodes=2), "stache"),
                 params={"flag": True})
        prog.run(make_machine(MachineConfig(n_nodes=2), "stache"),
                 params={"flag": False})
        assert taken == ["then", "else"]

    def test_loop_without_spec_rejected(self):
        from repro.cstar.flow import FlowLoop

        env = Env(runtime=None)
        with pytest.raises(SimulationError):
            execute(FlowLoop(), env)

    def test_call_without_payload_rejected(self):
        from repro.cstar.access import AccessSummary
        from repro.cstar.flow import FlowCall

        env = Env(runtime=None)
        with pytest.raises(SimulationError):
            execute(FlowCall("f", AccessSummary("f")), env)
