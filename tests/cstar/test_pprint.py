"""Round-trip tests: parse(pprint(ast)) == ast, including fuzzed expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cstar import astnodes as A
from repro.cstar.parser import parse
from repro.cstar.pprint import pprint_expr, pprint_program

# ----------------------------------------------------------------------------- #
# expression fuzzing
# ----------------------------------------------------------------------------- #

leaf_exprs = st.one_of(
    st.integers(min_value=0, max_value=999).map(A.Num),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
              allow_infinity=False).map(lambda v: A.Num(round(v, 3))),
    st.sampled_from(["x", "y", "k"]).map(A.Name),
    st.integers(min_value=0, max_value=1).map(A.Pos),
)

ops = st.sampled_from(["+", "-", "*", "/", "<", "<=", "==", "&&", "||"])


def exprs(depth: int):
    if depth == 0:
        return leaf_exprs
    sub = exprs(depth - 1)
    return st.one_of(
        leaf_exprs,
        st.tuples(ops, sub, sub).map(lambda t: A.BinOp(*t)),
        sub.map(lambda e: A.UnOp("-", e)),
        st.tuples(sub, sub).map(lambda t: A.Intrinsic("min", t)),
        sub.map(lambda e: A.Index("g", (e,))),
    )


def parse_expr_via_program(text: str) -> A.Node:
    """Embed the expression in a parallel function and re-extract it."""
    src = (
        "aggregate G(float)[];\n"
        "parallel f(G g parallel, float x, float y, int k) "
        "{ g[#0] = " + text + "; }\n"
        "main() { }\n"
    )
    program = parse(src)
    stmt = program.functions[0].body[0]
    assert isinstance(stmt, A.AssignElem)
    return stmt.value


class TestExpressionRoundTrip:
    @given(exprs(3))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, e):
        text = pprint_expr(e)
        assert parse_expr_via_program(text) == e

    def test_precedence_needs_parens(self):
        e = A.BinOp("*", A.BinOp("+", A.Num(1), A.Num(2)), A.Num(3))
        assert pprint_expr(e) == "(1 + 2) * 3"

    def test_right_assoc_parens(self):
        # 8 - (4 - 2) must keep its parens
        e = A.BinOp("-", A.Num(8), A.BinOp("-", A.Num(4), A.Num(2)))
        text = pprint_expr(e)
        assert parse_expr_via_program(text) == e
        assert "(" in text

    def test_left_assoc_no_parens(self):
        e = A.BinOp("-", A.BinOp("-", A.Num(8), A.Num(4)), A.Num(2))
        assert pprint_expr(e) == "8 - 4 - 2"


class TestProgramRoundTrip:
    SOURCES = [
        """
        aggregate Grid(float)[][];
        parallel sweep(Grid g parallel, Grid src, int n) {
          if (#0 > 0 && #0 < n - 1) {
            g[#0][#1] = 0.25 * (src[#0+1][#1] + src[#0-1][#1]);
          }
        }
        main() {
          let n = 8;
          Grid a(8, 8);
          Grid b(8, 8);
          for (i = 0; i < 3; i = i + 1) { sweep(a, b, n); sweep(b, a, n); }
        }
        """,
        """
        aggregate V(float)[];
        parallel f(V v parallel) {
          let s = 0.0;
          while (s < 3.0) { s = s + 1.0; }
          v[#0] = s;
        }
        main() {
          V a(4);
          f(a);
          let t = reduce_add(a);
          if (t > 0.0) { t = t - 1.0; } else { t = 0.0; }
        }
        """,
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_program_round_trip(self, src):
        ast1 = parse(src)
        printed = pprint_program(ast1)
        ast2 = parse(printed)
        assert ast1 == ast2

    def test_double_print_is_stable(self):
        ast = parse(self.SOURCES[0])
        p1 = pprint_program(ast)
        p2 = pprint_program(parse(p1))
        assert p1 == p2
