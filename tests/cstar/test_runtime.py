"""Tests for aggregates, distributions, and trace-capturing parallel calls."""

import numpy as np
import pytest

from repro.core import make_machine
from repro.cstar.runtime import (
    Block1D,
    CStarRuntime,
    RowBlock2D,
    Tiled2D,
    ELEMENT_SIZE,
)
from repro.util import ConfigError, MachineConfig, SimulationError


@pytest.fixture
def rt():
    return CStarRuntime(make_machine(MachineConfig(n_nodes=4), "stache"))


class TestDistributions:
    def test_block1d_contiguous(self):
        d = Block1D(n=8, nodes=4)
        assert [d.owner((i,)) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block1d_uneven(self):
        d = Block1D(n=5, nodes=4)
        owners = [d.owner((i,)) for i in range(5)]
        assert owners == [0, 0, 1, 1, 2]  # ceil(5/4)=2 per node

    def test_rowblock_bands(self):
        d = RowBlock2D(rows=8, cols=4, nodes=4)
        assert d.owner((0, 3)) == 0
        assert d.owner((2, 0)) == 1
        assert d.owner((7, 3)) == 3

    def test_tiled_covers_all_nodes(self):
        d = Tiled2D(rows=8, cols=8, nodes=4)
        owners = {d.owner((i, j)) for i in range(8) for j in range(8)}
        assert owners == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ConfigError):
            Block1D(n=8, nodes=2).validate((9,))


class TestAggregates:
    def test_allocation_and_defaults(self, rt):
        a = rt.aggregate("a", (8, 8))
        assert a.data.shape == (8, 8)
        assert a.data.dtype == np.float64
        assert isinstance(a.dist, RowBlock2D)

    def test_int_aggregate(self, rt):
        a = rt.aggregate("idx", (16,), dtype="int")
        assert a.data.dtype == np.int64
        assert isinstance(a.dist, Block1D)

    def test_bad_dtype(self, rt):
        with pytest.raises(ConfigError):
            rt.aggregate("x", (4,), dtype="complex")

    def test_addresses_are_element_strided(self, rt):
        a = rt.aggregate("a", (4, 4))
        assert a.addr((0, 1)) - a.addr((0, 0)) == ELEMENT_SIZE
        assert a.addr((1, 0)) - a.addr((0, 0)) == 4 * ELEMENT_SIZE

    def test_out_of_bounds_checked(self, rt):
        a = rt.aggregate("a", (4, 4))
        with pytest.raises(SimulationError):
            a.addr((4, 0))
        with pytest.raises(SimulationError):
            a.addr((0, -1))

    def test_rank_checked(self, rt):
        a = rt.aggregate("a", (4, 4))
        with pytest.raises(SimulationError):
            a.addr((1,))

    def test_home_alignment_with_distribution(self, rt):
        """A page's home is the owner of its first element, so own-element
        accesses are home-local."""
        a = rt.aggregate("a", (512,))  # 4096 bytes = 1 page per 512 elements
        m = rt.machine
        blk = m.addr_space.block_of(a.addr((0,)))
        assert m.home(blk) == a.owner((0,))


class TestParCall:
    def test_values_computed(self, rt):
        a = rt.aggregate("a", (8,))

        def body(ctx):
            ctx.write(a, ctx.pos, float(ctx.pos[0]) * 2.0)

        rt.par_call(body, over=a)
        assert list(a.data) == [i * 2.0 for i in range(8)]

    def test_snapshot_semantics(self, rt):
        """Reads observe phase-entry values even after another element's
        write (C** near-determinism)."""
        a = rt.aggregate("a", (8,))
        a.data[:] = 1.0

        def body(ctx):
            i = ctx.pos[0]
            left = ctx.read(a, ((i - 1) % 8,))
            ctx.write(a, ctx.pos, left + 1.0)

        rt.par_call(body, over=a)
        # every element read the OLD left value (1.0) regardless of order
        assert list(a.data) == [2.0] * 8

    def test_trace_assigns_ops_to_owners(self, rt):
        a = rt.aggregate("a", (8,))
        seen_nodes = []

        def body(ctx):
            seen_nodes.append(ctx.node)
            ctx.write(a, ctx.pos, 0.0)

        trace = rt.par_call(body, over=a)
        assert sorted(set(seen_nodes)) == [0, 1, 2, 3]
        assert all(len(ops) > 0 for ops in trace.ops)

    def test_compute_charges_recorded(self, rt):
        a = rt.aggregate("a", (4,))

        def body(ctx):
            ctx.charge(10)
            ctx.write(a, ctx.pos, 0.0)

        trace = rt.par_call(body, over=a)
        flat = [op for ops in trace.ops for op in ops]
        assert ("c", 10.0) in flat or ("c", 10) in flat

    def test_elements_restriction(self, rt):
        a = rt.aggregate("a", (8,))
        a.data[:] = 5.0

        def body(ctx):
            ctx.write(a, ctx.pos, 9.0)

        rt.par_call(body, over=a, elements=[(0,), (3,)])
        assert list(a.data) == [9.0, 5.0, 5.0, 9.0, 5.0, 5.0, 5.0, 5.0]

    def test_timing_accumulates_across_phases(self, rt):
        a = rt.aggregate("a", (8,))

        def body(ctx):
            ctx.charge(100)
            ctx.write(a, ctx.pos, 1.0)

        rt.par_call(body, over=a)
        t1 = rt.machine.clock
        rt.par_call(body, over=a)
        assert rt.machine.clock > t1
        stats = rt.finish()
        stats.check_conservation()
