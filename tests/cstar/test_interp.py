"""Unit tests for the C** interpreter: expression semantics and guards."""

import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.util import CompileError, MachineConfig, SimulationError


def run_expr(expr, n_nodes=2, dtype="float"):
    """Evaluate ``expr`` into v[0] of a 2-element aggregate; return v[0]."""
    src = f"""
    aggregate V({dtype})[];
    parallel f(V v parallel) {{ v[#0] = {expr}; }}
    main() {{ V a(2); f(a); }}
    """
    env = compile_source(src).run(
        make_machine(MachineConfig(n_nodes=n_nodes), "stache")
    )
    return env.agg("a").data[0]


class TestArithmetic:
    def test_precedence(self):
        assert run_expr("2.0 + 3.0 * 4.0") == 14.0

    def test_unary_minus(self):
        assert run_expr("-3.0 + 1.0") == -2.0

    def test_modulo(self):
        assert run_expr("7 % 3", dtype="int") == 1

    def test_int_division_truncates(self):
        assert run_expr("7 / 2", dtype="int") == 3

    def test_float_division(self):
        assert run_expr("7.0 / 2.0") == 3.5

    def test_comparisons_yield_01(self):
        assert run_expr("3.0 > 2.0", dtype="int") == 1
        assert run_expr("3.0 < 2.0", dtype="int") == 0
        assert run_expr("2.0 == 2.0", dtype="int") == 1
        assert run_expr("2.0 != 2.0", dtype="int") == 0
        assert run_expr("2.0 >= 2.0", dtype="int") == 1
        assert run_expr("1.0 <= 0.0", dtype="int") == 0

    def test_logical_ops(self):
        assert run_expr("1 && 0", dtype="int") == 0
        assert run_expr("1 || 0", dtype="int") == 1
        assert run_expr("!1", dtype="int") == 0
        assert run_expr("!0", dtype="int") == 1

    def test_short_circuit_and(self):
        # 0 && (1/0) must not evaluate the division
        assert run_expr("0 && 1 / 0", dtype="int") == 0

    def test_intrinsics(self):
        assert run_expr("pow(2.0, 10.0)") == 1024.0
        assert run_expr("floor(3.7)") == 3.0
        assert run_expr("min(2.0, -1.0)") == -1.0
        assert run_expr("exp(0.0)") == 1.0


class TestControlFlow:
    def test_for_loop_in_parallel_function(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) {
          let s = 0.0;
          for (j = 1; j <= 4; j = j + 1) { s = s + j; }
          v[#0] = s;
        }
        main() { V a(2); f(a); }
        """
        env = compile_source(src).run(
            make_machine(MachineConfig(n_nodes=2), "stache")
        )
        assert list(env.agg("a").data) == [10.0, 10.0]

    def test_while_in_parallel_function(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) {
          let k = #0 + 3;
          let s = 0.0;
          while (k > 0) { s = s + 1.0; k = k - 1; }
          v[#0] = s;
        }
        main() { V a(3); f(a); }
        """
        env = compile_source(src).run(
            make_machine(MachineConfig(n_nodes=2), "stache")
        )
        assert list(env.agg("a").data) == [3.0, 4.0, 5.0]

    def test_nested_if_else(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) {
          if (#0 == 0) { v[#0] = 10.0; }
          else if (#0 == 1) { v[#0] = 20.0; }
          else { v[#0] = 30.0; }
        }
        main() { V a(3); f(a); }
        """
        env = compile_source(src).run(
            make_machine(MachineConfig(n_nodes=2), "stache")
        )
        assert list(env.agg("a").data) == [10.0, 20.0, 30.0]

    def test_main_while_guard_against_runaway(self):
        # main's interpreted loops run through LoopSpec(cond=...); a loop
        # with side-effect-free condition terminates only via the condition
        src = """
        main() {
          let k = 3;
          while (k > 0) { k = k - 1; }
        }
        """
        compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))


class TestGuards:
    def test_out_of_bounds_index(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) { v[#0 + 1] = 1.0; }
        main() { V a(4); f(a); }
        """
        with pytest.raises(SimulationError):
            compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))

    def test_modulo_by_zero(self):
        with pytest.raises(SimulationError):
            run_expr("5 % 0", dtype="int")

    def test_float_index_truncates(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel, V src) { v[#0] = src[#0 / 2 * 2]; }
        main() { V a(4); V b(4); f(a, b); }
        """
        compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))


class TestScalarArguments:
    def test_scalar_expression_args(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel, float x, int k) { v[#0] = x * k; }
        main() {
          let base = 3;
          V a(2);
          f(a, 1.5, base + 1);
        }
        """
        env = compile_source(src).run(
            make_machine(MachineConfig(n_nodes=2), "stache")
        )
        assert list(env.agg("a").data) == [6.0, 6.0]

    def test_scalar_args_reevaluated_per_call(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel, float x) { v[#0] = v[#0] + x; }
        main() {
          V a(2);
          for (i = 1; i < 4; i = i + 1) { f(a, i); }
        }
        """
        env = compile_source(src).run(
            make_machine(MachineConfig(n_nodes=2), "stache")
        )
        assert list(env.agg("a").data) == [6.0, 6.0]  # 1+2+3
