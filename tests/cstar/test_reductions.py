"""Tests for C**'s main-level reductions (the language-level support the
paper contrasts with protocol-optimized communication)."""

import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.util import CompileError, MachineConfig


def run(src, protocol="stache", n_nodes=4):
    m = make_machine(MachineConfig(n_nodes=n_nodes), protocol)
    env = compile_source(src).run(m)
    return env, m


class TestSemantics:
    def test_reduce_add(self):
        src = """
        aggregate V(float)[];
        parallel fill(V v parallel) { v[#0] = #0 + 1.0; }
        parallel store(V v parallel, float x) { v[#0] = x; }
        main() {
          V a(8);
          V out(2);
          fill(a);
          let s = reduce_add(a);
          store(out, s);
        }
        """
        env, _ = run(src)
        assert list(env.agg("out").data) == [36.0, 36.0]  # 1+..+8

    def test_reduce_min_max(self):
        src = """
        aggregate V(float)[];
        parallel fill(V v parallel) { v[#0] = (#0 - 2.0) * (#0 - 2.0); }
        parallel store(V v parallel, float lo, float hi) {
          v[#0] = hi - lo;
        }
        main() {
          V a(6);
          V out(2);
          fill(a);
          let lo = reduce_min(a);
          let hi = reduce_max(a);
          store(out, lo, hi);
        }
        """
        env, _ = run(src)
        # values: 4,1,0,1,4,9 -> max 9, min 0
        assert list(env.agg("out").data) == [9.0, 9.0]

    def test_reduction_in_convergence_loop(self):
        """The canonical use: iterate until a residual reduction converges."""
        src = """
        aggregate V(float)[];
        parallel halve(V v parallel) { v[#0] = v[#0] * 0.5; }
        parallel fill(V v parallel) { v[#0] = 8.0; }
        main() {
          V a(4);
          fill(a);
          let steps = 0;
          while (reduce_max(a) > 1.0) {
            halve(a);
            steps = steps + 1;
          }
        }
        """
        env, _ = run(src)
        assert list(env.agg("a").data) == [1.0] * 4  # 8 -> 4 -> 2 -> 1

    def test_reduction_runs_a_phase(self):
        src = """
        aggregate V(float)[];
        parallel fill(V v parallel) { v[#0] = 1.0; }
        main() {
          V a(8);
          fill(a);
          let s = reduce_add(a);
        }
        """
        env, m = run(src)
        names = [p.phase_name for p in m.stats.phases]
        assert any("reduce_add" in n for n in names)

    def test_reduction_reads_are_home_local(self):
        """Each owner reads its own elements: reductions cause no remote
        misses when owners hold their data (aggregate large enough that
        page-granularity homes align with ownership)."""
        src = """
        aggregate V(float)[];
        parallel fill(V v parallel) { v[#0] = 2.0; }
        main() {
          V a(256);
          fill(a);
          let s = reduce_add(a);
        }
        """
        m = make_machine(MachineConfig(n_nodes=4, page_size=512), "stache")
        compile_source(src).run(m)
        assert m.stats.misses == 0


class TestChecks:
    def test_reduce_rejected_in_parallel_function(self):
        with pytest.raises(CompileError):
            compile_source("""
            aggregate V(float)[];
            parallel f(V v parallel) { v[#0] = reduce_add(v); }
            main() { V a(4); f(a); }
            """)

    def test_reduce_requires_aggregate(self):
        with pytest.raises(CompileError):
            compile_source("""
            main() { let x = 3; let s = reduce_add(x); }
            """)

    def test_reduce_arity_checked(self):
        with pytest.raises(CompileError):
            compile_source("""
            aggregate V(float)[];
            main() { V a(4); V b(4); let s = reduce_add(a, b); }
            """)

    def test_reduce_rejected_in_call_args(self):
        with pytest.raises(CompileError):
            compile_source("""
            aggregate V(float)[];
            parallel f(V v parallel, float x) { v[#0] = x; }
            main() { V a(4); f(a, reduce_add(a)); }
            """)
