"""End-to-end tests: compile C** source, run on the simulated machine, check
values against NumPy references and timing behaviour against expectations."""

import numpy as np
import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.util import CompileError, MachineConfig

JACOBI = """
aggregate Grid(float)[][];

parallel init(Grid g parallel, float v) {
  g[#0][#1] = v + #0 * 0.1 + #1 * 0.01;
}

parallel sweep(Grid g parallel, Grid src, int n) {
  if (#0 > 0 && #0 < n - 1 && #1 > 0 && #1 < n - 1) {
    g[#0][#1] = 0.25 * (src[#0+1][#1] + src[#0-1][#1] + src[#0][#1+1] + src[#0][#1-1]);
  }
}

main() {
  let n = 8;
  Grid a(8, 8);
  Grid b(8, 8);
  init(a, 1.0);
  init(b, 1.0);
  for (i = 0; i < 4; i = i + 1) {
    sweep(a, b, n);
    sweep(b, a, n);
  }
}
"""


def jacobi_reference(n=8, iters=4):
    def init(v):
        g = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                g[i, j] = v + i * 0.1 + j * 0.01
        return g

    a, b = init(1.0), init(1.0)

    def sweep(dst, src):
        out = dst.copy()
        out[1:-1, 1:-1] = 0.25 * (
            src[2:, 1:-1] + src[:-2, 1:-1] + src[1:-1, 2:] + src[1:-1, :-2]
        )
        return out

    for _ in range(iters):
        a = sweep(a, b)
        b = sweep(b, a)
    return a, b


class TestValues:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_jacobi_matches_numpy_reference(self, optimized):
        prog = compile_source(JACOBI)
        m = make_machine(
            MachineConfig(n_nodes=4), "predictive" if optimized else "stache"
        )
        env = prog.run(m, optimized=optimized)
        ref_a, ref_b = jacobi_reference()
        np.testing.assert_allclose(env.agg("a").data, ref_a, rtol=1e-12)
        np.testing.assert_allclose(env.agg("b").data, ref_b, rtol=1e-12)

    def test_optimized_and_unoptimized_same_values(self):
        prog = compile_source(JACOBI)
        m1 = make_machine(MachineConfig(n_nodes=4), "stache")
        m2 = make_machine(MachineConfig(n_nodes=4), "predictive")
        e1 = prog.run(m1, optimized=False)
        e2 = prog.run(m2, optimized=True)
        np.testing.assert_array_equal(e1.agg("a").data, e2.agg("a").data)

    def test_indirection_gather(self):
        src = """
        aggregate Vec(float)[];
        aggregate Idx(int)[];
        parallel fill(Vec v parallel) { v[#0] = #0 * 10.0; }
        parallel perm(Idx x parallel, int n) { x[#0] = n - 1 - #0; }
        parallel gather(Vec dst parallel, Vec src, Idx ind) {
          dst[#0] = src[ind[#0]];
        }
        main() {
          let n = 16;
          Vec a(16); Vec b(16); Idx p(16);
          fill(a); perm(p, n);
          gather(b, a, p);
        }
        """
        prog = compile_source(src)
        env = prog.run(make_machine(MachineConfig(n_nodes=4), "predictive"))
        expected = [(15 - i) * 10.0 for i in range(16)]
        assert list(env.agg("b").data) == expected

    def test_while_and_scalars(self):
        src = """
        aggregate V(float)[];
        parallel setv(V v parallel, float x) { v[#0] = x; }
        main() {
          let total = 0;
          let k = 4;
          V a(4);
          while (k > 0) {
            total = total + k;
            k = k - 1;
          }
          setv(a, total);
        }
        """
        env = compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))
        assert list(env.agg("a").data) == [10.0] * 4

    def test_intrinsics(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) { v[#0] = sqrt(16.0) + abs(0.0 - 2.0) + max(1.0, 5.0); }
        main() { V a(2); f(a); }
        """
        env = compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))
        assert list(env.agg("a").data) == [11.0, 11.0]


class TestTimingBehaviour:
    def test_predictive_reduces_remote_wait(self):
        prog = compile_source(JACOBI)
        m_base = make_machine(MachineConfig(n_nodes=4), "stache")
        m_pred = make_machine(MachineConfig(n_nodes=4), "predictive")
        s_base = prog.run(m_base, optimized=False).finish()
        s_pred = prog.run(m_pred, optimized=True).finish()
        assert (
            s_pred.figure_breakdown()["Remote data wait"]
            < s_base.figure_breakdown()["Remote data wait"]
        )

    def test_predictive_increases_hit_rate(self):
        prog = compile_source(JACOBI)
        s_base = prog.run(
            make_machine(MachineConfig(n_nodes=4), "stache"), optimized=False
        ).finish()
        s_pred = prog.run(
            make_machine(MachineConfig(n_nodes=4), "predictive"), optimized=True
        ).finish()
        assert s_pred.hit_rate > s_base.hit_rate

    def test_conservation_in_compiled_run(self):
        prog = compile_source(JACOBI)
        stats = prog.run(
            make_machine(MachineConfig(n_nodes=4), "predictive"), optimized=True
        ).finish()
        stats.check_conservation()


class TestCompileErrors:
    def test_div_zero_guarded(self):
        src = """
        aggregate V(float)[];
        parallel f(V v parallel) { v[#0] = 1.0 / 0.0; }
        main() { V a(2); f(a); }
        """
        from repro.util import SimulationError

        with pytest.raises(SimulationError):
            compile_source(src).run(make_machine(MachineConfig(n_nodes=2), "stache"))

    def test_unknown_call_rejected_at_compile_time(self):
        with pytest.raises(CompileError):
            compile_source("main() { ghost(); }")
