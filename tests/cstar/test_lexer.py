"""Tests for the C** lexer."""

import pytest

from repro.cstar.lexer import Token, tokenize
from repro.util import CompileError


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert toks[-1].kind == "eof"
        assert len(toks) == 1

    def test_keywords_vs_names(self):
        assert kinds("parallel foo") == [("kw", "parallel"), ("name", "foo")]

    def test_numbers(self):
        toks = tokenize("42 3.5 1e3 2.5e-2")
        assert toks[0].value == 42 and isinstance(toks[0].value, int)
        assert toks[1].value == 3.5
        assert toks[2].value == 1000.0
        assert toks[3].value == 0.025

    def test_position_pseudovars(self):
        toks = tokenize("#0 #1 #12")
        assert [t.value for t in toks[:-1]] == [0, 1, 12]
        assert all(t.kind == "pos" for t in toks[:-1])

    def test_bad_position(self):
        with pytest.raises(CompileError):
            tokenize("#x")

    def test_operators_maximal_munch(self):
        assert kinds("a <= b == c && d") == [
            ("name", "a"), ("op", "<="), ("name", "b"), ("op", "=="),
            ("name", "c"), ("op", "&&"), ("name", "d"),
        ]

    def test_punct(self):
        assert [k for k, _ in kinds("( ) { } [ ] , ;")] == ["punct"] * 8

    def test_unexpected_char(self):
        with pytest.raises(CompileError) as ei:
            tokenize("a @ b")
        assert "@" in str(ei.value)


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("name", "a"), ("name", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("name", "a"), ("name", "b")]

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            tokenize("a /* never ends")


class TestLocations:
    def test_line_col_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_error_carries_location(self):
        with pytest.raises(CompileError) as ei:
            tokenize("ok\n  $")
        assert ei.value.line == 2

    def test_lines_after_block_comment(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3
