"""Tests for the C** parser."""

import pytest

from repro.cstar import astnodes as A
from repro.cstar.parser import parse
from repro.util import CompileError

MINI = """
aggregate Grid(float)[][];
parallel f(Grid g parallel) { g[#0][#1] = 1.0; }
main() { Grid a(4, 4); f(a); }
"""


class TestDeclarations:
    def test_program_shape(self):
        p = parse(MINI)
        assert len(p.aggregates) == 1
        assert len(p.functions) == 1
        assert p.main is not None

    def test_aggregate_decl(self):
        p = parse(MINI)
        d = p.aggregates[0]
        assert d.name == "Grid" and d.base_type == "float" and d.rank == 2

    def test_aggregate_int_1d(self):
        p = parse("aggregate Idx(int)[]; parallel f(Idx x parallel){x[#0]=0;} main(){}")
        assert p.aggregates[0].base_type == "int"
        assert p.aggregates[0].rank == 1

    def test_aggregate_needs_dims(self):
        with pytest.raises(CompileError):
            parse("aggregate Bad(float); main(){}")

    def test_parallel_param_marker(self):
        p = parse(
            "aggregate G(float)[]; parallel f(G a, G b parallel) {b[#0]=a[#0];} main(){}"
        )
        f = p.functions[0]
        assert f.parallel_param().name == "b"

    def test_default_parallel_param_is_first(self):
        p = parse("aggregate G(float)[]; parallel f(G a, G b) {a[#0]=b[#0];} main(){}")
        assert p.functions[0].parallel_param().name == "a"

    def test_two_parallel_params_rejected(self):
        with pytest.raises(CompileError):
            parse(
                "aggregate G(float)[];"
                "parallel f(G a parallel, G b parallel) {a[#0]=1.0;} main(){}"
            )

    def test_missing_main(self):
        with pytest.raises(CompileError):
            parse("aggregate G(float)[];")

    def test_duplicate_main(self):
        with pytest.raises(CompileError):
            parse("main(){} main(){}")


class TestStatements:
    def wrap(self, body):
        return parse(
            "aggregate G(float)[]; parallel f(G g parallel){g[#0]=1.0;}"
            "main(){" + body + "}"
        ).main.body

    def test_let(self):
        (s,) = self.wrap("let x = 3;")
        assert isinstance(s, A.Let) and s.name == "x"

    def test_instantiation(self):
        (s,) = self.wrap("G a(10);")
        assert isinstance(s, A.NewAggregate)
        assert s.type_name == "G" and s.name == "a" and len(s.dims) == 1

    def test_for_loop(self):
        (s,) = self.wrap("for (i = 0; i < 10; i = i + 1) { let y = i; }")
        assert isinstance(s, A.For)
        assert s.init.name == "i"
        assert isinstance(s.cond, A.BinOp)

    def test_while(self):
        stmts = self.wrap("let x = 5; while (x > 0) { x = x - 1; }")
        assert isinstance(stmts[1], A.While)

    def test_if_else(self):
        stmts = self.wrap("let x = 1; if (x > 0) { x = 2; } else { x = 3; }")
        s = stmts[1]
        assert isinstance(s, A.If) and len(s.else_body) == 1

    def test_else_if_chain(self):
        stmts = self.wrap(
            "let x = 1; if (x > 2) { x = 0; } else if (x > 1) { x = 5; } else { x = 9; }"
        )
        s = stmts[1]
        assert isinstance(s.else_body[0], A.If)

    def test_call(self):
        stmts = self.wrap("G a(4); f(a);")
        assert isinstance(stmts[1], A.ParCallStmt)
        assert stmts[1].func == "f"


class TestExpressions:
    def expr(self, text):
        p = parse(
            "aggregate G(float)[]; parallel f(G g parallel){g[#0] = " + text + ";}"
            "main(){}"
        )
        stmt = p.functions[0].body[0]
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.right, A.BinOp) and e.right.op == "*"

    def test_parens_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.left, A.BinOp) and e.left.op == "+"

    def test_comparison_below_logical(self):
        e = self.expr("1 < 2 && 3 < 4")
        assert e.op == "&&"

    def test_unary_minus(self):
        e = self.expr("-g[#0]")
        assert isinstance(e, A.UnOp) and e.op == "-"

    def test_indexing_with_offsets(self):
        e = self.expr("g[#0 + 1]")
        assert isinstance(e, A.Index)
        assert isinstance(e.indices[0], A.BinOp)

    def test_intrinsic(self):
        e = self.expr("sqrt(g[#0])")
        assert isinstance(e, A.Intrinsic) and e.func == "sqrt"

    def test_non_intrinsic_call_in_expr_rejected(self):
        with pytest.raises(CompileError):
            self.expr("helper(1)")

    def test_left_associativity(self):
        e = self.expr("8 - 4 - 2")
        assert e.op == "-" and isinstance(e.left, A.BinOp)
        assert e.right == A.Num(2)
