"""Determinism regression: identical runs must be byte-identical.

The engine's FIFO tie-break makes a run a pure function of (program,
MachineConfig, protocol).  This is the repo's whole-pipeline regression for
that property: the quickstart workload (compile a C** stencil, simulate it)
run twice must produce byte-identical statistics and byte-identical recorded
session traces.  And under *different* seeded tie-break orders — legal
alternative interleavings of the same workload — the coherence-invariant
monitor must stay clean even though timing may differ.
"""

from __future__ import annotations

import json

import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.tempest.tracefile import record_regions, save_session
from repro.util import MachineConfig
from repro.verify import (
    ExplorerEngine,
    InvariantMonitor,
    SeededRandomPolicy,
)

# a scaled-down version of the quickstart Jacobi stencil (same shape:
# unstructured neighbor reads bracketed by compiler directives)
QUICKSTART_SOURCE = """
aggregate Grid(float)[][];

parallel init(Grid g parallel, float v) {
  g[#0][#1] = v + #0 * 0.1 + #1 * 0.01;
}

parallel sweep(Grid g parallel, Grid src, int n) {
  if (#0 > 0 && #0 < n - 1 && #1 > 0 && #1 < n - 1) {
    g[#0][#1] = 0.25 * (src[#0+1][#1] + src[#0-1][#1]
                      + src[#0][#1+1] + src[#0][#1-1]);
  }
}

main() {
  let n = 8;
  Grid a(8, 8);
  Grid b(8, 8);
  init(a, 1.0);
  init(b, 1.0);
  for (i = 0; i < 3; i = i + 1) {
    sweep(a, b, n);
    sweep(b, a, n);
  }
}
"""

CONFIG = MachineConfig(n_nodes=4, page_size=512)


def run_quickstart(protocol: str = "predictive", engine=None):
    """One full pipeline run; returns (stats, recorded session, regions)."""
    program = compile_source(QUICKSTART_SOURCE)
    machine = make_machine(CONFIG, protocol, engine=engine)
    machine.recorder = session = []
    env = program.run(machine, optimized=True)
    stats = env.finish()
    return stats, session, record_regions(machine)


def stats_fingerprint(stats) -> bytes:
    """A byte-exact serialization of everything user-visible in RunStats."""
    payload = {
        "wall_time": stats.wall_time,
        "summary": [[str(c) for c in row] for row in stats.summary_rows()],
        "phases": [
            (p.phase_name, p.directive_id, p.wall_start, p.wall_end,
             p.misses, p.hits, p.messages)
            for p in stats.phases
        ],
        "nodes": [
            {
                "cycles": {c.value: n.cycles[c] for c in n.cycles},
                "read_misses": n.read_misses,
                "write_misses": n.write_misses,
                "local_hits": n.local_hits,
                "messages_sent": n.messages_sent,
                "bytes_sent": n.bytes_sent,
            }
            for n in stats.nodes
        ],
    }
    return json.dumps(payload, sort_keys=True).encode()


@pytest.mark.parametrize("protocol", ["stache", "predictive"])
def test_same_config_twice_is_byte_identical(tmp_path, protocol):
    stats_a, session_a, regions_a = run_quickstart(protocol)
    stats_b, session_b, regions_b = run_quickstart(protocol)

    assert stats_fingerprint(stats_a) == stats_fingerprint(stats_b)

    save_session(session_a, tmp_path / "a.trace", regions=regions_a)
    save_session(session_b, tmp_path / "b.trace", regions=regions_b)
    assert (tmp_path / "a.trace").read_bytes() == (tmp_path / "b.trace").read_bytes()


def test_different_tiebreak_orders_keep_invariants_clean():
    """Two adversarial interleavings of the quickstart workload: timing may
    shift, but the invariant monitor must never fire."""
    for seed in (11, 97):
        policy = SeededRandomPolicy(seed)
        engine = ExplorerEngine(policy)
        program = compile_source(QUICKSTART_SOURCE)
        machine = make_machine(CONFIG, "predictive", engine=engine)
        monitor = InvariantMonitor(seed=seed, policy=policy).attach(machine)
        env = program.run(machine, optimized=True)
        env.finish()
        monitor.check(machine, phase="end-of-run")
        assert monitor.checks_run > 1  # the phase hook actually ran


def test_seeded_orders_are_reproducible():
    """The same tie-break seed reproduces the same interleaving decisions."""
    records = []
    for _ in range(2):
        policy = SeededRandomPolicy(1234)
        engine = ExplorerEngine(policy)
        program = compile_source(QUICKSTART_SOURCE)
        machine = make_machine(CONFIG, "stache", engine=engine)
        env = program.run(machine, optimized=False)
        stats = env.finish()
        records.append((list(policy.choices), stats_fingerprint(stats)))
    assert records[0] == records[1]
