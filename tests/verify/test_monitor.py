"""Tests for the dynamic invariant monitor: each invariant, provoked directly."""

import pytest

from repro.protocols.directory import DirState
from repro.tempest.tags import AccessTag
from repro.verify import (
    CoherenceViolation,
    InvariantMonitor,
    InvariantProfile,
    profile_for,
)

from tests.helpers import run_one_phase, small_machine


class TestProfiles:
    def test_invalidate_family_is_strict(self):
        for name in ("stache", "predictive"):
            prof = profile_for(name)
            assert not prof.home_writer_may_coexist
            assert DirState.SHARED in prof.shared_states

    def test_write_update_allows_home_writer(self):
        prof = profile_for("write-update")
        assert prof.home_writer_may_coexist
        assert "UPDATE_SHARED" in prof.shared_states

    def test_unknown_protocol_gets_strict_default(self):
        assert profile_for("anything-else") == InvariantProfile()


class TestCleanMachines:
    def test_fresh_machine_passes(self):
        m, b = small_machine()
        InvariantMonitor().check(m)

    def test_after_a_real_phase_passes(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b + 1), ("w", b + 1)]})
        monitor = InvariantMonitor()
        monitor.check(m, phase="after")
        assert monitor.checks_run == 1

    def test_phase_hook_fires_each_phase(self):
        m, b = small_machine()
        monitor = InvariantMonitor().attach(m)
        run_one_phase(m, {1: [("r", b)]})
        run_one_phase(m, {1: [("r", b)]})
        assert monitor.checks_run == 2


class TestSingleWriter:
    def test_two_writable_copies(self):
        m, b = small_machine(n_nodes=3)
        m.nodes[1].tags.set(b, AccessTag.READ_WRITE)  # home (0) already RW
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "single-writer"

    def test_writer_coexisting_with_reader(self):
        m, b = small_machine(n_nodes=3)
        m.nodes[1].tags.set(b, AccessTag.READ_ONLY)  # home still READ_WRITE
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "single-writer"

    def test_home_writer_plus_reader_legal_under_write_update(self):
        m, b = small_machine("write-update", n_nodes=3)
        run_one_phase(m, {0: [("w", b)], 1: [("r", b)]})
        # consumer registered: home holds RW, node 1 holds RO — the
        # write-update profile blesses exactly this pattern
        assert m.nodes[1].tags.get(b) is AccessTag.READ_ONLY
        assert m.nodes[0].tags.get(b) is AccessTag.READ_WRITE
        InvariantMonitor().check(m)


class TestDirectoryAgreement:
    def test_recorded_sharer_without_copy(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})  # directory: SHARED, sharers={1}
        m.nodes[1].tags.invalidate(b)      # cache disagrees
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "directory-agreement"

    def test_idle_entry_with_remote_copy(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        entry = m.protocol.directory.entry(b)
        entry.state = DirState.IDLE  # directory forgets the sharer
        entry.sharers.clear()
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "directory-agreement"


class TestLostInvalidation:
    def test_stale_sharer_not_in_directory(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
        entry = m.protocol.directory.entry(b)
        entry.sharers.discard(2)  # as if node 2's INV was sent and "acked"
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "lost-invalidation"

    def test_untracked_block_with_remote_copy(self):
        m, b = small_machine(n_nodes=3)
        m.nodes[0].tags.invalidate(b)  # quiet the single-writer check
        m.nodes[2].tags.set(b, AccessTag.READ_ONLY)
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "lost-invalidation"

    def test_exclusive_entry_with_leftover_reader(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("w", b)]})  # node 1 owns the block
        m.nodes[2].tags.set(b, AccessTag.READ_ONLY)
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant in ("lost-invalidation", "single-writer")


class TestQuiescence:
    def test_queued_event_at_barrier(self):
        m, b = small_machine()
        m.engine.schedule(m.engine.now + 100.0, lambda: None)
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "quiescence"

    def test_busy_directory_entry_at_barrier(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        m.protocol.directory.entry(b).state = DirState.BUSY_INV
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor().check(m)
        assert ei.value.invariant == "quiescence"


class TestViolationReports:
    def test_report_carries_replay_context(self):
        v = CoherenceViolation(
            "single-writer", "block 7: two writers",
            protocol="stache", phase="d0-it1", seed=12, schedule=[1, 0, 2],
        )
        text = v.report()
        assert "single-writer" in text
        assert "repro verify --replay 12" in text
        assert "[1, 0, 2]" in text
        assert "stache" in text

    def test_fifo_schedule_rendered_explicitly(self):
        v = CoherenceViolation("quiescence", "x", seed=3)
        assert "(FIFO order)" in v.report()

    def test_monitor_stamps_seed_and_schedule(self):
        from repro.verify import SeededRandomPolicy

        m, b = small_machine(n_nodes=3)
        policy = SeededRandomPolicy(5)
        policy.choices.extend([1, 1])
        m.nodes[1].tags.set(b, AccessTag.READ_WRITE)
        with pytest.raises(CoherenceViolation) as ei:
            InvariantMonitor(seed=5, policy=policy).check(m)
        assert ei.value.seed == 5
        assert ei.value.schedule == [1, 1]


class TestDeadNodeReferences:
    """The crash-recovery self-check: after a node dies, no surviving
    directory entry or predictive schedule may still reference it."""

    def test_clean_machine_has_no_refs(self):
        from repro.verify.monitor import dead_node_references

        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        # nothing is down, so the default query is empty...
        assert dead_node_references(m) == []
        # ...and an unreferenced node has no refs either
        assert dead_node_references(m, {2}) == []

    def test_sharer_reference_is_found(self):
        from repro.verify.monitor import dead_node_references

        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        refs = dead_node_references(m, {1})
        assert refs, "node 1 shares the block; its death must be visible"
        assert any("sharer" in r for r in refs)

    def test_owner_reference_is_found(self):
        from repro.verify.monitor import dead_node_references

        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {2: [("w", b)]})
        refs = dead_node_references(m, {2})
        assert any("owner" in r for r in refs)

    def test_schedule_reference_is_found(self):
        from repro.verify.monitor import dead_node_references

        m, b = small_machine(protocol="predictive", n_nodes=3)
        m.begin_group("d0")
        run_one_phase(m, {1: [("r", b)]})
        m.end_group()
        assert any("schedule" in r for r in dead_node_references(m, {1}))
