"""Tests for tie-break policies, the explorer engine, and DFS enumeration."""

import pytest

from repro.sim.engine import Engine
from repro.verify import (
    DfsPolicy,
    ExplorerEngine,
    FifoPolicy,
    ReplayPolicy,
    SeededRandomPolicy,
    explore_dfs,
    generate_workload,
    run_workload,
)

# policies only inspect len(frontier); opaque placeholders suffice for units
F2 = ["a", "b"]
F3 = ["a", "b", "c"]


class TestPolicies:
    def test_fifo_always_picks_first(self):
        p = FifoPolicy()
        assert [p.pick(F2), p.pick(F3), p.pick(F2)] == [0, 0, 0]
        assert p.choices == [0, 0, 0]

    def test_singleton_frontier_is_not_a_choice_point(self):
        p = SeededRandomPolicy(0)
        p.pick(["only"])
        assert p.choices == []
        assert p.frontiers == []

    def test_seeded_policy_is_reproducible(self):
        a, b = SeededRandomPolicy(42), SeededRandomPolicy(42)
        for f in (F2, F3, F3, F2, F3):
            assert a.pick(f) == b.pick(f)
        assert a.choices == b.choices

    def test_seeded_policies_differ_across_seeds(self):
        picks = {
            tuple(SeededRandomPolicy(s).pick(F3) for _ in range(8))
            for s in range(6)
        }
        assert len(picks) > 1

    def test_replay_follows_prefix_then_fifo(self):
        p = ReplayPolicy([1, 2])
        assert [p.pick(F2), p.pick(F3), p.pick(F3)] == [1, 2, 0]

    def test_replay_clamps_to_frontier(self):
        p = ReplayPolicy([5])
        assert p.pick(F2) == 1  # clamped to len - 1

    def test_choices_record_frontier_sizes(self):
        p = ReplayPolicy([1, 1])
        p.pick(F2)
        p.pick(F3)
        assert p.frontiers == [2, 3]


class TestExplorerEngine:
    def test_fifo_policy_matches_base_engine(self):
        """With FifoPolicy the explorer is behaviourally the base engine."""
        order_base, order_exp = [], []
        for engine, order in [(Engine(), order_base),
                              (ExplorerEngine(FifoPolicy()), order_exp)]:
            for label in ("a", "b", "c"):
                engine.schedule(10.0, lambda l=label: order.append(l))
            engine.schedule(5.0, lambda: order.append("first"))
            engine.run()
        assert order_exp == order_base == ["first", "a", "b", "c"]

    def test_policy_reorders_same_time_events(self):
        order = []
        engine = ExplorerEngine(ReplayPolicy([2, 1]))
        for label in ("a", "b", "c"):
            engine.schedule(10.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["c", "b", "a"]

    def test_never_reorders_across_timestamps(self):
        order = []
        engine = ExplorerEngine(SeededRandomPolicy(7))
        for i, t in enumerate((3.0, 1.0, 2.0)):
            engine.schedule(t, lambda i=i: order.append(i))
        engine.run()
        assert order == [1, 2, 0]

    def test_cancelled_events_never_enter_the_frontier(self):
        order = []
        engine = ExplorerEngine(SeededRandomPolicy(3))
        engine.schedule(10.0, lambda: order.append("keep"))
        dead = engine.schedule(10.0, lambda: order.append("dead"))
        dead.cancel()
        engine.run()
        assert order == ["keep"]

    def test_default_max_events_bounds_run(self):
        from repro.util import SimulationError

        engine = ExplorerEngine(FifoPolicy(), default_max_events=10)

        def reschedule():
            engine.schedule(engine.now + 1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run()


class TestWorkloadExploration:
    def test_seeded_run_hits_real_choice_points(self):
        """The generated workloads actually produce same-time frontiers —
        without them the whole subsystem would be exploring nothing."""
        wl = generate_workload(2)
        policy = SeededRandomPolicy(9)
        run_workload(wl, "stache", policy)
        assert len(policy.choices) > 0
        assert max(policy.frontiers) >= 2

    def test_same_seed_same_interleaving(self):
        wl = generate_workload(4)
        records = []
        for _ in range(2):
            policy = SeededRandomPolicy(17)
            obs = run_workload(wl, "stache", policy)
            records.append((policy.choices[:], obs.stats.wall_time))
        assert records[0] == records[1]

    def test_explore_dfs_enumerates_distinct_schedules(self):
        wl = generate_workload(2)
        schedules = [
            choices
            for choices, _ in explore_dfs(
                lambda p: run_workload(wl, "stache", p),
                max_runs=10, max_depth=4,
            )
        ]
        assert 1 < len(schedules) <= 10
        assert len({tuple(s[:4]) for s in schedules}) == len(schedules)

    def test_explore_dfs_first_run_is_fifo(self):
        wl = generate_workload(2)
        gen = explore_dfs(lambda p: run_workload(wl, "stache", p), max_runs=1)
        choices, obs = next(gen)
        assert all(c == 0 for c in choices)
        assert obs.stats is not None

    def test_dfs_policy_records_beyond_prefix(self):
        p = DfsPolicy([1])
        p.pick(F3)
        p.pick(F3)
        assert p.choices == [1, 0]
        assert p.frontiers == [3, 3]
