"""Tests for the differential oracle and workload generator."""

import pytest

from repro.tempest.tracefile import load_session, save_session
from repro.verify import (
    ALL_PROTOCOLS,
    INVALIDATE_PROTOCOLS,
    CoherenceViolation,
    Observables,
    differential_check,
    expected_observables,
    generate_workload,
    run_workload,
)


class TestWorkloadGeneration:
    def test_deterministic_per_seed(self):
        a, b = generate_workload(9), generate_workload(9)
        assert a.config == b.config
        assert a.regions == b.regions
        assert [(e[0],) + ((e[1].ops,) if e[0] == "phase" else e[1:])
                for e in a.events] == \
               [(e[0],) + ((e[1].ops,) if e[0] == "phase" else e[1:])
                for e in b.events]

    def test_dialects_split_by_parity(self):
        assert generate_workload(6).protocols == ALL_PROTOCOLS
        assert generate_workload(7).protocols == INVALIDATE_PROTOCOLS

    def test_home_owned_seeds_write_only_at_home(self):
        wl = generate_workload(6)
        homes = wl.regions[0]["homes"]
        bpp = wl.config.page_size // wl.config.block_size
        for ev in wl.events:
            if ev[0] != "phase":
                continue
            for node, ops in enumerate(ev[1].ops):
                for op in ops:
                    if op[0] == "w":
                        page = op[1] // bpp - 1  # page 0 is reserved
                        assert homes[page] == node

    def test_at_most_one_writer_per_block_per_phase(self):
        """The property that makes the final memory image trace-determined."""
        for seed in range(12):
            wl = generate_workload(seed)
            for ev in wl.events:
                if ev[0] != "phase":
                    continue
                writers: dict[int, int] = {}
                for node, ops in enumerate(ev[1].ops):
                    for op in ops:
                        if op[0] == "w":
                            assert writers.setdefault(op[1], node) == node
                            writers[op[1]] = node

    def test_sessions_survive_the_tracefile_round_trip(self, tmp_path):
        wl = generate_workload(6)
        path = tmp_path / "wl.trace"
        save_session(wl.events, path, regions=wl.regions)
        events, regions = load_session(path)
        assert regions == wl.regions
        assert len(events) == len(wl.events)


class TestRunWorkload:
    def test_observables_match_ground_truth(self):
        wl = generate_workload(2)
        obs = run_workload(wl, "stache")
        want = expected_observables(wl)
        assert obs.readers == want["readers"]
        assert obs.writers == want["writers"]
        assert obs.image == want["image"]

    def test_all_protocols_agree_on_home_owned_seed(self):
        wl = generate_workload(6)
        observed = {p: run_workload(wl, p) for p in wl.protocols}
        differential_check(wl, observed)  # must not raise

    def test_remote_write_seed_exercises_exclusive_paths(self):
        wl = generate_workload(7)
        obs = run_workload(wl, "stache")
        assert obs.stats.misses > 0
        differential_check(wl, {"stache": obs})


class TestDifferentialCheck:
    def test_mismatched_image_is_a_violation(self):
        wl = generate_workload(6)
        obs = run_workload(wl, "stache")
        block = next(iter(obs.image))
        writer, count = obs.image[block]
        obs.image[block] = (writer, count + 1)  # phantom extra write
        with pytest.raises(CoherenceViolation) as ei:
            differential_check(wl, {"stache": obs})
        assert ei.value.invariant == "differential"
        assert "memory image" in ei.value.detail

    def test_mismatched_readers_is_a_violation(self):
        wl = generate_workload(6)
        obs = run_workload(wl, "stache")
        block = next(iter(obs.readers))
        obs.readers[block] = set(obs.readers[block]) | {99}
        with pytest.raises(CoherenceViolation) as ei:
            differential_check(wl, {"stache": obs})
        assert "reader sets" in ei.value.detail

    def test_empty_observables_flagged(self):
        wl = generate_workload(6)
        with pytest.raises(CoherenceViolation):
            differential_check(wl, {"stache": Observables(protocol="stache")})
