"""Tests for the fuzz campaign driver, shrinking, and — the point of the
whole subsystem — that deliberately broken protocols are caught with a
minimized, seed-replayable counterexample."""

import pytest

from repro.core.factory import PROTOCOLS
from repro.protocols.stache import StacheProtocol
from repro.tempest.tags import AccessTag
from repro.verify import (
    CoherenceViolation,
    ReplayPolicy,
    dfs_explore_seed,
    fuzz,
    generate_workload,
    replay_seed,
    run_workload,
    shrink_schedule,
    verify_trace_file,
)

# -- deliberately broken protocols -------------------------------------------------
#
# Both carry name="stache" so the invariant monitor applies the strict
# write-invalidate profile, exactly as it would to the protocol they sabotage.


class DroppedAck(StacheProtocol):
    """Swallows the first invalidation instead of acknowledging it.

    The victim's copy does get invalidated, but home waits forever for the
    missing ACK — the writer's fault never completes and the phase barrier
    deadlocks.  This is the classic lost-message protocol bug.
    """

    def __init__(self, machine):
        super().__init__(machine)
        self._dropped = False

    def cache_invalidate(self, msg, t):
        tags = self.machine.node(msg.dst).tags
        if not self._dropped and tags.get(msg.block) is not AccessTag.INVALID:
            self._dropped = True
            tags.invalidate(msg.block)
            return  # never sends the ACK
        super().cache_invalidate(msg, t)


class SkippedInvalidation(StacheProtocol):
    """Grants a writable copy without invalidating one of the sharers.

    The home quietly forgets one reader and proceeds as if it had been
    invalidated — leaving a stale read-only copy coexisting with the new
    writer.  The tag-level invariants (single-writer / lost-invalidation)
    must catch it at the next barrier.
    """

    def __init__(self, machine):
        super().__init__(machine)
        self._skipped = False

    def write_invalidates_readers(self, entry, msg, t):
        others = entry.sharers - {msg.src}
        if others and not self._skipped:
            self._skipped = True
            entry.sharers.discard(max(others))  # stale copy left behind
        super().write_invalidates_readers(entry, msg, t)


@pytest.fixture
def broken(monkeypatch):
    """Run the fuzzer against a sabotaged 'stache' implementation."""

    def install(cls):
        monkeypatch.setitem(PROTOCOLS, "stache", cls)

    return install


# -- clean campaigns ---------------------------------------------------------------


class TestCleanFuzz:
    def test_small_campaign_is_clean(self):
        report = fuzz(seeds=8)
        assert report.ok, report.summary()
        assert report.seeds == 8
        # every seed runs stache+predictive; even seeds add write-update
        assert report.runs == 8 * 2 + 4

    def test_summary_renders(self):
        report = fuzz(seeds=2)
        text = report.summary()
        assert "2 seed(s)" in text
        assert "no coherence violations" in text

    def test_replay_seed_reruns_one_seed(self):
        report = replay_seed(5)
        assert report.ok
        assert report.seeds == 1

    def test_dfs_explores_clean_seed(self):
        executed, violations = dfs_explore_seed(2, "stache", max_runs=6)
        assert executed > 1
        assert violations == []

    def test_dfs_skips_incompatible_dialect(self):
        # odd seeds are remote-write workloads; write-update cannot run them
        executed, violations = dfs_explore_seed(1, "write-update")
        assert (executed, violations) == (0, [])


# -- broken protocols are caught ---------------------------------------------------


class TestBrokenProtocolsCaught:
    def test_dropped_ack_caught_with_minimized_counterexample(self, broken):
        """Acceptance: a dropped invalidation ack yields a violation whose
        schedule is shrunk to a minimal prefix and replays from its seed."""
        broken(DroppedAck)
        report = fuzz(seeds=6, protocols=["stache"], shrink=True)
        assert not report.ok
        rec = report.violations[0]
        assert rec.violation.invariant in ("deadlock", "quiescence")
        assert rec.minimized_schedule is not None
        assert rec.minimized_schedule == []  # FIFO alone reproduces the bug

        # seed-replayable: regenerate the workload from the recorded seed and
        # rerun the minimized schedule — the violation must reproduce
        workload = generate_workload(rec.seed)
        with pytest.raises(CoherenceViolation) as ei:
            run_workload(workload, "stache",
                         ReplayPolicy(rec.minimized_schedule))
        assert ei.value.invariant == rec.violation.invariant
        assert ei.value.seed == rec.seed

    def test_dropped_ack_report_names_the_replay_command(self, broken):
        broken(DroppedAck)
        report = fuzz(seeds=6, protocols=["stache"])
        text = report.violations[0].report()
        assert f"--replay {report.violations[0].seed}" in text
        assert "minimized" in text

    def test_skipped_invalidation_trips_tag_invariants(self, broken):
        """A stale read-only copy coexisting with a writer must be caught by
        the tag-table checks, not just the deadlock detector."""
        broken(SkippedInvalidation)
        report = fuzz(seeds=10, protocols=["stache"], shrink=False)
        assert not report.ok
        invariants = {r.violation.invariant for r in report.violations}
        assert invariants & {"single-writer", "lost-invalidation",
                             "directory-agreement"}

    def test_dfs_also_finds_the_dropped_ack(self, broken):
        broken(DroppedAck)
        found = []
        for seed in range(0, 8):
            _, violations = dfs_explore_seed(seed, "stache", max_runs=8)
            found.extend(violations)
            if found:
                break
        assert found
        assert found[0].minimized_schedule is not None

    def test_clean_after_fixture_restores_real_protocol(self):
        """The monkeypatch must not leak: the shipped stache is clean."""
        report = fuzz(seeds=2, protocols=["stache"])
        assert report.ok, report.summary()


# -- shrinking mechanics -----------------------------------------------------------


class TestShrinkSchedule:
    def test_shrinks_to_failing_prefix(self):
        # failure is triggered by any schedule whose first 3 entries are kept
        minimal, runs = shrink_schedule(lambda p: len(p) >= 3,
                                        [1, 2, 1, 0, 2, 1, 0, 0])
        assert minimal == [1, 2, 1]
        assert runs >= 2

    def test_empty_schedule_failure_short_circuits(self):
        minimal, runs = shrink_schedule(lambda p: True, [1, 2, 3])
        assert minimal == []
        assert runs == 1

    def test_trailing_fifo_defaults_trimmed(self):
        # fails whenever the prefix contains a 1 anywhere
        minimal, _ = shrink_schedule(lambda p: 1 in p, [0, 1, 0, 0, 0])
        assert minimal == [0, 1]

    def test_invariant_full_schedule_must_fail(self):
        minimal, _ = shrink_schedule(lambda p: p == [1, 1], [1, 1])
        assert minimal == [1, 1]


# -- bundled traces ----------------------------------------------------------------


class TestBundledTraces:
    def test_bundled_traces_verify_clean(self):
        import glob

        paths = sorted(glob.glob("examples/traces/*.trace"))
        assert len(paths) == 3
        for path in paths:
            report = verify_trace_file(path)
            assert report.ok, f"{path}:\n{report.summary()}"

    def test_bundled_traces_match_their_generators(self, tmp_path):
        """The checked-in traces are exactly what the generator emits, so
        --regen-traces is idempotent."""
        from pathlib import Path

        from repro.tempest.tracefile import save_session
        from repro.verify import make_bundled_sessions

        for name, wl in make_bundled_sessions().items():
            bundled = Path("examples/traces") / name
            fresh = tmp_path / f"regen-{name}"
            save_session(wl.events, fresh, regions=wl.regions)
            assert fresh.read_bytes() == bundled.read_bytes(), name
