"""Tests for the ``repro verify`` CLI subcommand."""

import pytest

from repro.cli import main


class TestVerifyCommand:
    def test_small_fuzz_run_exits_zero(self, capsys):
        rc = main(["verify", "--seeds", "4", "--no-traces"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 seed(s)" in out
        assert "no coherence violations" in out

    def test_protocol_subset(self, capsys):
        rc = main(["verify", "--seeds", "2", "--no-traces",
                   "--protocols", "stache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "protocols stache" in out

    def test_unknown_protocol_rejected(self, capsys):
        rc = main(["verify", "--seeds", "1", "--protocols", "mesi"])
        assert rc == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_replay_single_seed(self, capsys):
        rc = main(["verify", "--replay", "3", "--no-traces"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 seed(s)" in out

    def test_dfs_mode(self, capsys):
        rc = main(["verify", "--seeds", "1", "--no-traces",
                   "--dfs", "4", "--dfs-seeds", "2", "--protocols", "stache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dfs [stache]" in out
        assert "interleaving(s) explored" in out

    def test_bundled_traces_replayed(self, capsys):
        rc = main(["verify", "--seeds", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("producer_consumer", "multireader_fanin",
                     "adaptive_growth"):
            assert f"trace {name}.trace" in out
        assert "monitored replay(s) — ok" in out

    def test_regen_traces_into_fresh_dir(self, tmp_path, capsys):
        rc = main(["verify", "--regen-traces", "--traces", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        written = sorted(p.name for p in tmp_path.glob("*.trace"))
        assert written == ["adaptive_growth.trace", "multireader_fanin.trace",
                           "producer_consumer.trace"]
        assert "wrote" in out

    def test_missing_traces_dir_is_skipped(self, capsys):
        rc = main(["verify", "--seeds", "1", "--traces", "does/not/exist"])
        assert rc == 0
        assert "trace " not in capsys.readouterr().out.replace("traces", "")

    def test_violations_exit_nonzero(self, capsys, monkeypatch):
        from repro.core.factory import PROTOCOLS

        from tests.verify.test_fuzz import DroppedAck

        monkeypatch.setitem(PROTOCOLS, "stache", DroppedAck)
        rc = main(["verify", "--seeds", "6", "--no-traces",
                   "--protocols", "stache"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "VIOLATION" in out
        assert "--replay" in out
