"""Tests for the discrete-event engine: ordering, determinism, guards."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Engine
from repro.util import SimulationError


class TestOrdering:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: seen.append(5))
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(3.0, lambda: seen.append(3))
        eng.run()
        assert seen == [1, 3, 5]

    def test_ties_fire_fifo(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(7.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == list(range(10))

    def test_now_tracks_dispatch_time(self):
        eng = Engine()
        times = []
        eng.schedule(2.0, lambda: times.append(eng.now))
        eng.schedule(9.0, lambda: times.append(eng.now))
        eng.run()
        assert times == [2.0, 9.0]

    def test_callbacks_can_schedule(self):
        eng = Engine()
        seen = []
        def first():
            seen.append("first")
            eng.schedule_after(1.0, lambda: seen.append("second"))
        eng.schedule(1.0, first)
        eng.run()
        assert seen == ["first", "second"]
        assert eng.now == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_dispatch_order_is_sorted(self, times):
        eng = Engine()
        seen = []
        for t in times:
            eng.schedule(t, lambda t=t: seen.append(t))
        eng.run()
        assert seen == sorted(times)


class TestGuards:
    def test_cannot_schedule_past(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_after(-1.0, lambda: None)

    def test_max_events_guard(self):
        eng = Engine()
        def loop():
            eng.schedule_after(1.0, loop)
        eng.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_run_not_reentrant(self):
        eng = Engine()
        def reenter():
            eng.run()
        eng.schedule(0.0, reenter)
        with pytest.raises(SimulationError):
            eng.run()


class TestControls:
    def test_run_until_leaves_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(10.0, lambda: seen.append(10))
        eng.run(until=5.0)
        assert seen == [1]
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 10]

    def test_cancelled_event_skipped(self):
        eng = Engine()
        seen = []
        ev = eng.schedule(1.0, lambda: seen.append("cancelled"))
        eng.schedule(2.0, lambda: seen.append("kept"))
        ev.cancel()
        eng.run()
        assert seen == ["kept"]

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        ev = eng.schedule(4.0, lambda: None)
        eng.schedule(6.0, lambda: None)
        assert eng.peek_time() == 4.0
        ev.cancel()
        assert eng.peek_time() == 6.0

    def test_dispatch_counts(self):
        eng = Engine()
        for t in range(5):
            eng.schedule(float(t), lambda: None)
        n = eng.run()
        assert n == 5
        assert eng.total_dispatched == 5


class TestEdgeCases:
    def test_cancel_everything_before_run(self):
        eng = Engine()
        events = [eng.schedule(float(t), lambda: None) for t in range(5)]
        for ev in events:
            ev.cancel()
        assert eng.pending == 0
        assert eng.run() == 0
        assert eng.now == 0.0  # nothing dispatched, clock never moved

    def test_pending_prunes_cancelled_events(self):
        eng = Engine()
        events = [eng.schedule(float(t), lambda: None) for t in range(6)]
        for ev in events[::2]:
            ev.cancel()
        assert eng.pending == 3
        # pruned for real, not merely skipped: the heap no longer holds them
        assert len(eng._queue) == 3
        assert all(not ev.cancelled for ev in eng._queue)

    def test_max_events_cutoff_mid_timestep(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(1.0, lambda i=i: seen.append(i))
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=4)
        # the cutoff fired after exactly 4 same-timestamp dispatches,
        # FIFO order preserved, and the rest stayed queued
        assert seen == [0, 1, 2, 3]
        assert eng.pending == 6
        eng.run()
        assert seen == list(range(10))

    def test_peek_time_after_drain(self):
        eng = Engine()
        eng.schedule(3.0, lambda: None)
        eng.run()
        assert eng.peek_time() is None
        assert eng.pending == 0
        # the engine is still usable after draining
        eng.schedule_after(1.0, lambda: None)
        assert eng.peek_time() == 4.0

    def test_cancel_during_dispatch(self):
        eng = Engine()
        seen = []
        later = eng.schedule(2.0, lambda: seen.append("later"))
        eng.schedule(1.0, lambda: later.cancel())
        eng.run()
        assert seen == []
