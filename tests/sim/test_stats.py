"""Tests for execution-time accounting."""

import pytest

from repro.sim import NodeStats, RunStats, TimeCategory


class TestNodeStats:
    def test_starts_zero(self):
        n = NodeStats(0)
        assert n.total == 0.0

    def test_add_accumulates(self):
        n = NodeStats(0)
        n.add(TimeCategory.COMPUTE, 10.0)
        n.add(TimeCategory.COMPUTE, 5.0)
        n.add(TimeCategory.SYNCH, 2.0)
        assert n.cycles[TimeCategory.COMPUTE] == 15.0
        assert n.total == 17.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NodeStats(0).add(TimeCategory.SYNCH, -1.0)


class TestRunStats:
    def make(self):
        rs = RunStats(2)
        rs.nodes[0].add(TimeCategory.COMPUTE, 100.0)
        rs.nodes[0].add(TimeCategory.REMOTE_WAIT, 20.0)
        rs.nodes[1].add(TimeCategory.COMPUTE, 60.0)
        rs.nodes[1].add(TimeCategory.SYNCH, 60.0)
        rs.wall_time = 120.0
        return rs

    def test_mean(self):
        rs = self.make()
        assert rs.mean(TimeCategory.COMPUTE) == 80.0

    def test_figure_breakdown_folds_compute_and_synch(self):
        rs = self.make()
        b = rs.figure_breakdown()
        assert b["Compute+Synch"] == 110.0
        assert b["Remote data wait"] == 10.0
        assert sum(b.values()) == pytest.approx(rs.wall_time)

    def test_conservation_passes_when_sums_match(self):
        rs = self.make()
        rs.check_conservation()

    def test_conservation_fails_on_mismatch(self):
        rs = self.make()
        rs.wall_time = 999.0
        with pytest.raises(AssertionError):
            rs.check_conservation()

    def test_hit_rate(self):
        rs = RunStats(1)
        rs.nodes[0].local_hits = 90
        rs.nodes[0].read_misses = 7
        rs.nodes[0].write_misses = 3
        assert rs.hit_rate == pytest.approx(0.9)
        assert rs.misses == 10

    def test_hit_rate_no_accesses(self):
        assert RunStats(1).hit_rate == 1.0

    def test_summary_rows_shape(self):
        rows = self.make().summary_rows()
        assert any("wall time" in r[0] for r in rows)
        assert all(len(r) == 2 for r in rows)


class TestPhaseBreakdownRoundTrip:
    def make(self):
        from repro.sim.stats import PhaseBreakdown

        return PhaseBreakdown(
            phase_name="sweep", directive_id=3, wall_start=10.0,
            wall_end=250.0, misses=4, hits=96, messages=12,
            cycles={"compute": 180.0, "remote_wait": 50.0, "synch": 10.0},
        )

    def test_to_from_dict(self):
        from repro.sim.stats import PhaseBreakdown

        ph = self.make()
        back = PhaseBreakdown.from_dict(ph.to_dict())
        assert back == ph
        assert back.cycles == ph.cycles
        assert back.wall == pytest.approx(240.0)

    def test_run_stats_round_trip_keeps_phases(self):
        rs = RunStats(1)
        rs.wall_time = 250.0
        rs.nodes[0].add(TimeCategory.COMPUTE, 250.0)
        rs.phases.append(self.make())
        back = RunStats.from_dict(rs.to_dict())
        assert len(back.phases) == 1
        assert back.phases[0] == rs.phases[0]
        assert back.phase_category_totals() == rs.phase_category_totals()

    def test_json_serializable(self):
        import json

        text = json.dumps(self.make().to_dict(), sort_keys=True)
        assert "remote_wait" in text
