"""Phase profiler and schedule-quality analytics."""

import pytest

from repro.obs import EventKind, EventTrace, profile_run
from tests.obs.test_events import traced_run


@pytest.fixture(scope="module")
def run():
    tracer = EventTrace()
    stats = traced_run(tracer=tracer)
    return stats, tracer


class TestPhaseTimeline:
    def test_one_row_per_phase_execution(self, run):
        stats, tracer = run
        report = profile_run(stats, tracer)
        assert len(report.phases) == len(stats.phases) == 14
        sweeps = [p for p in report.phases if p.phase == "sweep"]
        assert [p.iteration for p in sweeps] == list(range(1, 13))

    def test_rows_match_stats_deltas(self, run):
        stats, tracer = run
        report = profile_run(stats, tracer)
        assert sum(p.misses for p in report.phases) == stats.misses
        assert sum(p.hits for p in report.phases) == stats.local_hits
        assert report.wall_time == stats.wall_time
        for p in report.phases:
            assert 0.0 <= p.hit_rate <= 1.0
            assert p.wall >= 0

    def test_works_without_a_trace(self, run):
        stats, _ = run
        report = profile_run(stats)
        assert len(report.phases) == 14
        assert report.schedule_quality == []
        assert report.event_counts == {}
        assert "(no pre-send activity" in report.render()


class TestScheduleQuality:
    def test_rows_per_directive_instance(self, run):
        stats, tracer = run
        report = profile_run(stats, tracer)
        rows = report.schedule_quality
        assert rows, "optimized predictive jacobi must pre-send"
        begins = tracer.of_kind(EventKind.GROUP_BEGIN)
        assert len(rows) == len(begins)
        assert [(q.directive, q.instance) for q in rows] == sorted(
            (q.directive, q.instance) for q in rows)

    def test_quality_bounds(self, run):
        stats, tracer = run
        for q in profile_run(stats, tracer).schedule_quality:
            assert 0.0 <= q.waste_ratio <= 1.0
            assert 0.0 <= q.accuracy <= 1.0
            assert 0.0 <= q.coverage <= 1.0
            assert q.consumed + q.useless <= q.blocks_sent
            if q.messages:
                assert q.coalescing >= 1.0

    def test_consumed_totals_match_trace(self, run):
        stats, tracer = run
        rows = profile_run(stats, tracer).schedule_quality
        consumed = len(tracer.of_kind(EventKind.PRESEND_CONSUMED))
        assert sum(q.consumed for q in rows) == consumed
        sent = sum(int(ev.attrs.get("blocks", 1))
                   for ev in tracer.of_kind(EventKind.PRESEND_MSG))
        assert sum(q.blocks_sent for q in rows) == sent

    def test_learning_improves_coverage(self, run):
        """The paper's core claim, per-instance: later instances of a
        directive pre-send what the first instance missed."""
        stats, tracer = run
        rows = profile_run(stats, tracer).schedule_quality
        by_directive = {}
        for q in rows:
            by_directive.setdefault(q.directive, []).append(q)
        improved = [
            qs[-1].coverage > qs[0].coverage
            for qs in by_directive.values() if len(qs) >= 3
        ]
        assert improved and all(improved)


class TestReportOutput:
    def test_render_contains_both_tables(self, run):
        stats, tracer = run
        text = profile_run(stats, tracer).render()
        assert "Phase timeline" in text
        assert "Schedule quality" in text
        assert "coverage" in text

    def test_to_dict_schema(self, run):
        stats, tracer = run
        doc = profile_run(stats, tracer).to_dict()
        assert doc["schema"] == "repro.profile/v1"
        assert doc["wall_time"] == stats.wall_time
        assert len(doc["phases"]) == 14
        assert doc["schedule_quality"]
        assert doc["event_counts"] == tracer.counts()
