"""Event bus: tracer contract, phase context, and non-interference."""

import pathlib

import pytest

from repro.core import make_machine
from repro.cstar import compile_source
from repro.obs import EventKind, EventTrace, NULL_TRACER, TraceEvent, Tracer
from repro.obs.events import CountingTracer
from repro.util.config import MachineConfig

JACOBI = (pathlib.Path(__file__).parent.parent.parent
          / "examples/programs/jacobi.cstar")


def traced_run(protocol="predictive", tracer=None):
    program = compile_source(JACOBI.read_text())
    machine = make_machine(
        MachineConfig(n_nodes=4, block_size=32, page_size=512), protocol
    )
    if tracer is not None:
        machine.attach_tracer(tracer)
    env = program.run(machine, optimized=True)
    return env.finish()


class TestTracerContract:
    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        # the whole point: emitting through it is a no-op, not an error
        NULL_TRACER.emit(EventKind.MISS_BEGIN, 0.0, node=1, block=2)
        NULL_TRACER.begin_phase("sweep#1", None, 0.0)
        NULL_TRACER.end_phase(1.0)
        NULL_TRACER.set_directive(3)

    def test_machine_defaults_to_null_tracer(self):
        machine = make_machine(MachineConfig(n_nodes=2), "stache")
        assert machine.obs is NULL_TRACER
        assert machine.network.obs is NULL_TRACER
        assert machine.engine.obs is None

    def test_attach_tracer_wires_all_layers(self):
        machine = make_machine(MachineConfig(n_nodes=2), "stache")
        tracer = EventTrace()
        machine.attach_tracer(tracer)
        assert machine.obs is tracer
        assert machine.network.obs is tracer
        assert machine.engine.obs is tracer

    def test_all_kinds_are_unique_strings(self):
        kinds = EventKind.all_kinds()
        assert len(kinds) > 25
        assert all(isinstance(k, str) and "." in k for k in kinds)

    def test_base_name(self):
        assert EventTrace.base_name("sweep#12") == "sweep"
        assert EventTrace.base_name("sweep") == "sweep"
        assert EventTrace.base_name("a#b") == "a#b"
        assert EventTrace.base_name("#3") == "#3"


class TestEventTrace:
    def test_records_phase_context(self):
        tracer = EventTrace()
        traced_run(tracer=tracer)
        begins = tracer.of_kind(EventKind.PHASE_BEGIN)
        sweeps = [ev for ev in begins if ev.phase == "sweep"]
        assert len(sweeps) == 12  # 6 loop iterations x 2 sweep calls
        assert [ev.iteration for ev in sweeps] == list(range(1, 13))
        assert {ev.phase for ev in begins} == {"init", "sweep"}
        # events inside a phase inherit its context
        miss = tracer.of_kind(EventKind.MISS_BEGIN)
        assert miss, "a 4-node jacobi must take remote misses"
        assert all(ev.phase == "sweep" and ev.iteration >= 1 for ev in miss)

    def test_every_event_kind_is_known(self):
        tracer = EventTrace()
        traced_run(tracer=tracer)
        known = EventKind.all_kinds()
        assert set(tracer.counts()) <= known

    def test_timestamps_monotone_per_phase_boundaries(self):
        tracer = EventTrace()
        stats = traced_run(tracer=tracer)
        ends = tracer.of_kind(EventKind.PHASE_END)
        assert ends[-1].ts == pytest.approx(stats.wall_time)
        begins = tracer.of_kind(EventKind.PHASE_BEGIN)
        for b, e in zip(begins, ends):
            assert b.ts <= e.ts

    def test_presend_events_carry_directive(self):
        tracer = EventTrace()
        traced_run(tracer=tracer)
        presends = tracer.of_kind(EventKind.PRESEND_MSG)
        assert presends, "optimized predictive jacobi must pre-send"
        assert all(ev.directive is not None for ev in presends)

    def test_counts_match_len(self):
        tracer = EventTrace()
        traced_run(tracer=tracer)
        assert sum(tracer.counts().values()) == len(tracer)
        assert len(list(iter(tracer))) == len(tracer)


class TestTraceEventRoundtrip:
    def test_to_from_dict(self):
        ev = TraceEvent(ts=4.5, kind=EventKind.MISS_BEGIN, node=2,
                        phase="sweep", iteration=3, directive=1,
                        attrs={"block": 7})
        assert TraceEvent.from_dict(ev.to_dict()) == ev

    def test_to_dict_omits_nones(self):
        ev = TraceEvent(ts=0.0, kind=EventKind.BARRIER_RELEASE)
        assert ev.to_dict() == {"ts": 0.0, "kind": EventKind.BARRIER_RELEASE}


class TestNonInterference:
    """Tracing must observe the run, never change it."""

    @pytest.mark.parametrize("protocol", ["stache", "predictive",
                                          "write-update"])
    def test_stats_identical_with_and_without_tracing(self, protocol):
        untraced = traced_run(protocol=protocol)
        traced = traced_run(protocol=protocol, tracer=EventTrace())
        assert traced.wall_time == untraced.wall_time
        assert traced.misses == untraced.misses
        assert traced.local_hits == untraced.local_hits
        assert traced.messages == untraced.messages
        assert ([ (p.phase_name, p.wall_start, p.wall_end, p.misses)
                  for p in traced.phases ]
                == [ (p.phase_name, p.wall_start, p.wall_end, p.misses)
                     for p in untraced.phases ])

    def test_counting_tracer_counts_all_sites(self):
        counting = CountingTracer()
        traced_run(tracer=counting)
        recording = EventTrace()
        traced_run(tracer=recording)
        # begin_phase/end_phase each emit one event in EventTrace, so the
        # two enabled sinks must agree on total guard executions
        assert counting.emitted == len(recording)


class TestCustomSink:
    def test_subclass_receives_emissions(self):
        seen = []

        class Sink(Tracer):
            enabled = True

            def emit(self, kind, ts, node=None, **attrs):
                seen.append(kind)

        traced_run(tracer=Sink())
        assert EventKind.MSG_SEND in seen
