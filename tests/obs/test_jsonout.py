"""Machine-readable run stats (the --json schema)."""

import json

import pytest

from repro.faults import BUNDLED_PLANS
from repro.obs import STATS_SCHEMA, run_stats_json
from repro.sim.stats import TimeCategory
from repro.verify.oracle import run_workload
from repro.verify.workload import generate_workload
from tests.obs.test_events import traced_run


@pytest.fixture(scope="module")
def stats():
    return traced_run()


class TestSchema:
    def test_versioned_and_json_safe(self, stats):
        doc = run_stats_json(stats, app="jacobi", protocol="predictive")
        assert doc["schema"] == STATS_SCHEMA == "repro.run-stats/v1"
        json.dumps(doc)  # must be serializable as-is

    def test_meta_lands_under_run(self, stats):
        doc = run_stats_json(stats, app="jacobi", nodes=4, skipped=None)
        assert doc["run"] == {"app": "jacobi", "nodes": 4}

    def test_totals_match_stats(self, stats):
        doc = run_stats_json(stats)
        assert doc["wall_time"] == stats.wall_time
        assert doc["totals"]["remote_misses"] == stats.misses
        assert doc["totals"]["local_hits"] == stats.local_hits
        assert doc["totals"]["messages"] == stats.messages
        assert doc["figure_breakdown"] == stats.figure_breakdown()

    def test_per_node_cycles_conserve(self, stats):
        doc = run_stats_json(stats)
        assert len(doc["nodes"]) == 4
        for node in doc["nodes"]:
            assert set(node["cycles"]) == {c.value for c in TimeCategory}
            assert sum(node["cycles"].values()) == pytest.approx(
                doc["wall_time"])

    def test_phase_rows(self, stats):
        doc = run_stats_json(stats)
        assert len(doc["phases"]) == len(stats.phases)
        assert doc["phases"][0]["name"].startswith("init")

    def test_fault_free_run_has_no_resilience_key(self, stats):
        assert "resilience" not in run_stats_json(stats)


class TestResilienceSection:
    def test_faulted_run_reports_nonzero_counters(self):
        w = generate_workload(0)
        obs = run_workload(w, "stache",
                           fault_plan=BUNDLED_PLANS["drop"].with_(seed=1))
        doc = run_stats_json(obs.stats)
        res = doc.get("resilience")
        assert res, "a drop plan must surface retries or dups"
        assert all(v for v in res.values())
        assert set(res) <= {
            "transport_retries", "transport_timeouts",
            "duplicates_suppressed", "schedules_degraded", "crashes",
            "reissued_requests", "downtime_cycles",
        }
