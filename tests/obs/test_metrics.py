"""Metrics registry: accessors, merge algebra (property-tested), serde."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import METRICS_SCHEMA, _label_key


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_peak_merge(self):
        g = Gauge()
        g.set(4.0)
        other = Gauge(9.0)
        g.merge(other)
        assert g.value == 9.0

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert h.count == 4
        assert h.mean == pytest.approx((0.5 + 5 + 50 + 500) / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10, 1))
        with pytest.raises(ValueError):
            Histogram(buckets=(1, 1, 10))

    def test_histogram_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1, 10)).merge(Histogram(buckets=(1, 100)))


class TestRegistryAccessors:
    def test_get_or_create_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x", node=1) is reg.counter("x", node=1)
        assert reg.counter("x", node=1) is not reg.counter("x", node=2)

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", node=1, app="water")
        b = reg.counter("x", app="water", node=1)
        assert a is b
        assert _label_key({"b": 1, "a": 2}) == _label_key({"a": 2, "b": 1})

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_value_and_total(self):
        reg = MetricsRegistry()
        reg.counter("m", node=0).inc(2)
        reg.counter("m", node=1).inc(3)
        assert reg.value("m", node=0) == 2
        assert reg.value("m", node=9) == 0.0
        assert reg.total("m") == 5
        reg.histogram("h").observe(1)
        with pytest.raises(TypeError):
            reg.value("h")

    def test_series_sorted(self):
        reg = MetricsRegistry()
        reg.counter("m", node=2).inc()
        reg.counter("m", node=0).inc()
        labels = [lab for lab, _ in reg.series("m")]
        assert labels == [{"node": "0"}, {"node": "2"}]


# --------------------------------------------------------------------------- #
# merge algebra (satellite: commutative, associative, identity, conservation)
# --------------------------------------------------------------------------- #

_BUCKETS = (1.0, 10.0, 100.0)  # one shared shape so merges are legal

# integer-valued amounts keep float addition exact, so the associativity
# property tests the merge algebra rather than float rounding
_amount = st.integers(0, 1000).map(float)
_counter_ops = st.lists(
    st.tuples(st.sampled_from(["reqs", "misses"]),
              st.integers(0, 3), _amount),
    max_size=6,
)
_gauge_ops = st.lists(
    st.tuples(st.sampled_from(["depth"]), st.integers(0, 3), _amount),
    max_size=4,
)
_hist_ops = st.lists(
    st.tuples(st.sampled_from(["lat"]), st.integers(0, 3), _amount),
    max_size=6,
)


@st.composite
def registries(draw):
    reg = MetricsRegistry()
    for name, node, amount in draw(_counter_ops):
        reg.counter(name, node=node).inc(amount)
    for name, node, value in draw(_gauge_ops):
        reg.gauge(name, node=node).set(value)
    for name, node, value in draw(_hist_ops):
        reg.histogram(name, buckets=_BUCKETS, node=node).observe(value)
    return reg


def canonical(reg: MetricsRegistry):
    return reg.to_dict()


class TestMergeAlgebra:
    @given(registries(), registries())
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, a, b):
        assert canonical(a.merge(b)) == canonical(b.merge(a))

    @given(registries(), registries(), registries())
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        assert (canonical(a.merge(b).merge(c))
                == canonical(a.merge(b.merge(c))))

    @given(registries())
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, a):
        empty = MetricsRegistry()
        assert canonical(a.merge(empty)) == canonical(a)
        assert canonical(empty.merge(a)) == canonical(a)

    @given(registries(), registries())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_pure(self, a, b):
        before_a, before_b = canonical(a), canonical(b)
        a.merge(b)
        assert canonical(a) == before_a
        assert canonical(b) == before_b

    @given(registries(), registries())
    @settings(max_examples=60, deadline=None)
    def test_histogram_counts_conserved(self, a, b):
        merged = a.merge(b)

        def totals(reg):
            total, per_bucket = 0, [0] * (len(_BUCKETS) + 1)
            for _, h in reg.series("lat"):
                total += h.count
                per_bucket = [x + y for x, y in zip(per_bucket, h.counts)]
            return total, per_bucket

        ta, ba = totals(a)
        tb, bb = totals(b)
        tm, bm = totals(merged)
        assert tm == ta + tb
        assert bm == [x + y for x, y in zip(ba, bb)]
        # within every histogram, bucket counts always sum to .count
        for _, h in merged.series("lat"):
            assert sum(h.counts) == h.count

    @given(registries(), registries())
    @settings(max_examples=60, deadline=None)
    def test_counter_totals_add(self, a, b):
        merged = a.merge(b)
        for name in ("reqs", "misses"):
            assert merged.total(name) == pytest.approx(
                a.total(name) + b.total(name))

    @given(registries())
    @settings(max_examples=60, deadline=None)
    def test_serde_roundtrip(self, a):
        assert canonical(MetricsRegistry.from_dict(a.to_dict())) == canonical(a)

    @given(registries(), registries())
    @settings(max_examples=30, deadline=None)
    def test_merge_all_matches_pairwise(self, a, b):
        assert (canonical(MetricsRegistry.merge_all([a, b]))
                == canonical(a.merge(b)))


class TestSerde:
    def test_schema_stamped(self):
        assert MetricsRegistry().to_dict()["schema"] == METRICS_SCHEMA

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"schema": "nope/v9", "metrics": []})

    def test_rejects_unknown_type(self):
        doc = {"schema": METRICS_SCHEMA,
               "metrics": [{"name": "x", "labels": {}, "type": "summary",
                            "value": 1.0}]}
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict(doc)

    def test_rejects_duplicate_series(self):
        rec = {"name": "x", "labels": {}, "type": "counter", "value": 1.0}
        doc = {"schema": METRICS_SCHEMA, "metrics": [rec, dict(rec)]}
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict(doc)


class TestRegistryFromRun:
    def test_node_cycles_sum_to_wall(self):
        from tests.obs.test_events import traced_run

        from repro.obs import registry_from_run

        stats = traced_run(protocol="predictive")
        reg = registry_from_run(stats, app="jacobi", protocol="predictive")
        assert reg.value("run.wall_cycles", app="jacobi",
                         protocol="predictive") == stats.wall_time
        # per-node category cycles must reproduce conservation
        for node in stats.nodes:
            total = sum(
                m.value for lab, m in reg.series("node.cycles")
                if lab["node"] == str(node.node)
            )
            assert total == pytest.approx(stats.wall_time)
        hist = reg.get("phase.wall_cycles", app="jacobi",
                       protocol="predictive")
        assert hist.count == len(stats.phases)
