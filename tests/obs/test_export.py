"""Chrome-trace exporter, validator, and the JSONL event log."""

import json

import pytest

from repro.obs import (
    EventKind,
    EventTrace,
    TraceEvent,
    chrome_trace_document,
    load_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from tests.obs.test_events import traced_run


@pytest.fixture(scope="module")
def trace():
    tracer = EventTrace()
    traced_run(tracer=tracer)
    return tracer


@pytest.fixture(scope="module")
def doc(trace):
    return chrome_trace_document(trace.events, n_nodes=4)


class TestChromeDocument:
    def test_real_run_validates(self, doc):
        assert validate_chrome_trace(doc) == []

    def test_has_named_tracks_per_node(self, doc):
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names == {"machine", "node 0", "node 1", "node 2", "node 3"}

    def test_phase_spans_on_machine_track(self, doc):
        spans = [ev for ev in doc["traceEvents"]
                 if ev["ph"] == "X" and ev.get("cat") == "phase"]
        assert len(spans) == 14  # 2 init + 12 sweep
        assert all(ev["tid"] == 0 and ev["dur"] > 0 for ev in spans)
        assert any(ev["name"] == "sweep#12" for ev in spans)

    def test_miss_slices_on_node_tracks(self, doc):
        misses = [ev for ev in doc["traceEvents"]
                  if ev["ph"] == "X" and ev.get("cat") == "miss"]
        assert misses
        assert all(ev["tid"] >= 1 for ev in misses)
        assert all(ev["dur"] >= 0 for ev in misses)

    def test_message_flow_arrows_pair_up(self, doc):
        starts = [ev for ev in doc["traceEvents"] if ev["ph"] == "s"]
        ends = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        assert starts, "a remote-miss run must produce message flows"
        assert {ev["id"] for ev in starts} == {ev["id"] for ev in ends}

    def test_presend_messages_categorized(self, doc):
        cats = {ev.get("cat") for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert "presend-msg" in cats
        assert "presend" in cats  # the machine-track pre-send span

    def test_cycles_map_to_microseconds(self, doc, trace):
        last_end = max(ev.ts for ev in trace.of_kind(EventKind.PHASE_END))
        spans = [ev for ev in doc["traceEvents"]
                 if ev["ph"] == "X" and ev.get("cat") == "phase"]
        assert max(ev["ts"] + ev["dur"] for ev in spans) == last_end


class TestValidator:
    """The validator must actually catch malformed documents."""

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_unknown_phase_letter(self):
        doc = {"traceEvents": [{"ph": "Z", "pid": 0, "ts": 0, "name": "x"}]}
        assert any("unknown ph" in p for p in validate_chrome_trace(doc))

    def test_negative_duration(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "ts": 0, "dur": -1, "name": "x"}]}
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_missing_ts(self):
        doc = {"traceEvents": [{"ph": "i", "pid": 0, "name": "x", "s": "t"}]}
        assert any("numeric ts" in p for p in validate_chrome_trace(doc))

    def test_unmatched_flow(self):
        doc = {"traceEvents": [
            {"ph": "s", "pid": 0, "ts": 0, "name": "m", "id": 7}]}
        assert any("no finish" in p for p in validate_chrome_trace(doc))

    def test_unnamed_tid(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 3, "ts": 0, "dur": 1, "name": "x"}]}
        assert any("never named" in p for p in validate_chrome_trace(doc))

    def test_bad_metadata_name(self):
        doc = {"traceEvents": [{"ph": "M", "pid": 0, "name": "bogus_meta"}]}
        assert any("unknown metadata" in p for p in validate_chrome_trace(doc))


class TestFaultInstants:
    def test_drop_and_crash_render_as_instants(self):
        events = [
            TraceEvent(ts=1.0, kind=EventKind.MSG_DROP, node=0,
                       attrs={"msg_id": 5}),
            TraceEvent(ts=2.0, kind=EventKind.CRASH, node=1,
                       attrs={"op_index": 3}),
            TraceEvent(ts=3.0, kind=EventKind.RESTART, node=1,
                       attrs={"incarnation": 1}),
        ]
        doc = chrome_trace_document(events, n_nodes=2)
        assert validate_chrome_trace(doc) == []
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert [ev["name"] for ev in instants] == ["drop", "CRASH", "RESTART"]

    def test_dropped_message_makes_no_flow(self):
        # a send whose receive never happens must not leave a dangling flow
        events = [
            TraceEvent(ts=1.0, kind=EventKind.MSG_SEND, node=0,
                       attrs={"msg_id": 5, "msg_kind": "GET_RO", "dst": 1}),
        ]
        doc = chrome_trace_document(events, n_nodes=2)
        assert validate_chrome_trace(doc) == []
        assert not [ev for ev in doc["traceEvents"] if ev["ph"] in ("s", "f")]


class TestFiles:
    def test_write_chrome_trace_is_loadable_json(self, tmp_path, trace):
        out = tmp_path / "trace.json"
        doc = write_chrome_trace(out, trace.events, n_nodes=4)
        assert json.loads(out.read_text()) == doc

    def test_jsonl_roundtrip(self, tmp_path, trace):
        out = tmp_path / "events.jsonl"
        n = write_jsonl(out, trace.events)
        assert n == len(trace)
        assert load_jsonl(out) == trace.events
