"""Regression: per-node time categories conserve under every regime.

Every node's COMPUTE + REMOTE_WAIT + PREDICTIVE + SYNCH + DOWNTIME cycles
must sum exactly to the run's wall clock — under all three protocols, fault
free, under message-fault plans, and under crash-stop plans (where DOWNTIME
absorbs the outage).  ``RunStats.check_conservation`` is the single oracle;
these tests pin it across the whole regime matrix so an accounting bug in
any one layer (engine, transport, recovery) cannot land silently.
"""

import pytest

from repro.faults import BUNDLED_PLANS, CRASH_PLANS
from repro.sim.stats import TimeCategory
from repro.verify.oracle import run_workload
from repro.verify.workload import generate_workload
from tests.obs.test_events import traced_run

PROTOCOLS = ["stache", "predictive", "write-update"]


def assert_conserves(stats):
    stats.check_conservation()
    # and explicitly, category by category, so a failure names the node
    for node in stats.nodes:
        total = sum(node.cycles[c] for c in TimeCategory)
        assert total == pytest.approx(stats.wall_time), (
            f"node {node.node}: categories sum to {total}, "
            f"wall is {stats.wall_time}"
        )


class TestFaultFree:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_compiled_program(self, protocol):
        assert_conserves(traced_run(protocol=protocol))

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_generated_workload(self, protocol):
        obs = run_workload(generate_workload(0), protocol)
        assert_conserves(obs.stats)


class TestMessageFaults:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("plan", ["drop", "duplicate", "delay", "chaos"])
    def test_conserves_under_plan(self, protocol, plan):
        obs = run_workload(generate_workload(0), protocol,
                           fault_plan=BUNDLED_PLANS[plan].with_(seed=1))
        assert_conserves(obs.stats)


class TestCrashes:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("plan", ["crash", "crash-storm"])
    def test_conserves_with_downtime(self, protocol, plan):
        obs = run_workload(generate_workload(0), protocol,
                           fault_plan=CRASH_PLANS[plan].with_(seed=2))
        assert_conserves(obs.stats)

    def test_downtime_is_nonzero_when_a_node_crashed(self):
        # the category actually participates (not trivially zero): find a
        # seed whose run crashes at least one node
        for seed in range(1, 8):
            obs = run_workload(generate_workload(0), "stache",
                               fault_plan=CRASH_PLANS["crash"].with_(seed=seed))
            if obs.stats.crashes:
                assert obs.stats.downtime > 0
                assert_conserves(obs.stats)
                return
        pytest.fail("no seed in 1..7 produced a crash")
