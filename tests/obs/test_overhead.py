"""The disabled-tracing overhead guard (CI smoke asserts the 5% budget)."""

from repro.obs.overhead import (
    BUDGET,
    OverheadReport,
    measure_guard_cost,
    measure_overhead,
)


class TestGuardMicrobench:
    def test_guard_cost_is_positive_and_tiny(self):
        cost = measure_guard_cost(iterations=20_000)
        assert 0 < cost < 1e-5  # an attribute load is nanoseconds, not 10us


class TestReportArithmetic:
    def test_bound_and_verdict(self):
        report = OverheadReport(workload="x", untraced_seconds=1.0,
                                guard_sites=1000, per_guard_seconds=1e-6)
        assert report.bound == 1e-3
        assert report.ok
        text = report.render()
        assert "OK" in text and "0.100%" in text

    def test_over_budget_fails(self):
        report = OverheadReport(workload="x", untraced_seconds=1.0,
                                guard_sites=10_000_000,
                                per_guard_seconds=1e-5)
        assert report.bound > BUDGET
        assert not report.ok
        assert "OVER BUDGET" in report.render()


class TestSeedRunBound:
    def test_disabled_path_under_budget(self):
        """The satellite guard itself: the water seed run's disabled-tracing
        overhead bound must stay within the 5% budget."""
        report = measure_overhead(repeats=1)
        assert report.guard_sites > 1000, "instrumentation must actually fire"
        assert report.ok, report.render()
