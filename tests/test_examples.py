"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; these tests keep them green.
Each example's ``main()`` is imported and called directly (stdout captured).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name",
    ["quickstart", "adaptive_mesh", "water_md", "custom_protocol",
     "unstructured_mesh", "pipeline_migratory"],
)
def test_example_runs(name, capsys):
    mod = load_example(name)
    mod.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_barnes_example_runs(capsys):
    # the largest example; keep it separate so a timeout is attributable
    mod = load_example("barnes_nbody")
    mod.main()
    out = capsys.readouterr().out
    assert "five versions" in out
    assert "hoisted loop" in out


def test_quickstart_claims_speedup(capsys):
    mod = load_example("quickstart")
    mod.main()
    out = capsys.readouterr().out
    line = [l for l in out.splitlines() if "speedup" in l][0]
    speedup = float(line.rsplit(" ", 1)[-1].rstrip("x"))
    assert speedup > 1.0


def test_example_program_files_compile():
    from repro.cstar import compile_source

    for path in (EXAMPLES / "programs").glob("*.cstar"):
        program = compile_source(path.read_text())
        assert program.placement.groups, f"{path.name}: no directives placed"
