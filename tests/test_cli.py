"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

JACOBI = pathlib.Path(__file__).parent.parent / "examples/programs/jacobi.cstar"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "x.cstar"])
        assert args.protocol == "predictive"
        assert args.nodes == 8
        assert not args.unoptimized


class TestCompile(object):
    def test_compile_example(self, capsys):
        assert main(["compile", str(JACOBI)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "phase group" in out

    def test_compile_verbose_shows_reaching(self, capsys):
        assert main(["compile", str(JACOBI), "-v"]) == 0
        out = capsys.readouterr().out
        assert "reaching unstructured accesses" in out
        assert "[needs schedule]" in out

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.cstar"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_bad_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.cstar"
        bad.write_text("main() { let x = ; }")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_example(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "hit rate" in out

    def test_run_unoptimized(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4", "--unoptimized",
                     "--protocol", "stache"]) == 0
        out = capsys.readouterr().out
        assert "optimized=False" in out

    def test_run_block_size(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4",
                     "--block-size", "128"]) == 0
        assert "block=128B" in capsys.readouterr().out


class TestOtherCommands:
    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "StacheProtocol" in out
        assert "no holes" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Adaptive" in capsys.readouterr().out

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestDumpAst:
    def test_dump_ast_round_trips(self, capsys, tmp_path):
        assert main(["compile", str(JACOBI), "--dump-ast"]) == 0
        out = capsys.readouterr().out
        ast_text = out.split("// --- analysis ---")[0]
        # the dumped AST is itself valid C** and compiles to the same analysis
        f = tmp_path / "roundtrip.cstar"
        f.write_text(ast_text)
        assert main(["compile", str(f)]) == 0
        out2 = capsys.readouterr().out
        assert "2 phase group(s) placed" in out2


class TestFaultsCommand:
    def test_list_plans_includes_crash_plans(self, capsys):
        assert main(["faults", "--list-plans"]) == 0
        out = capsys.readouterr().out
        for name in ("drop", "chaos", "crash", "crash-storm", "crash-lossy"):
            assert name in out

    def test_unknown_plan_rejected(self, capsys):
        assert main(["faults", "--plans", "no-such-plan"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_crash_campaign_smoke(self, capsys):
        rc = main(["faults", "--crash", "--seeds", "1", "--no-traces",
                   "--protocols", "stache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no coherence violations" in out
        assert "fault campaign: 3 plan(s)" in out


class TestRunJson:
    def test_json_to_stdout_suppresses_table(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema"] == "repro.run-stats/v1"
        assert doc["run"]["protocol"] == "predictive"
        assert len(doc["nodes"]) == 4
        assert "wall time" not in out  # the table is replaced, not mixed in

    def test_json_to_file_keeps_table(self, tmp_path, capsys):
        out_path = tmp_path / "stats.json"
        assert main(["run", str(JACOBI), "--nodes", "4",
                     "--json", str(out_path)]) == 0
        assert "wall time" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.run-stats/v1"

    def test_metrics_out(self, tmp_path):
        out_path = tmp_path / "metrics.json"
        assert main(["run", str(JACOBI), "--nodes", "4",
                     "--metrics-out", str(out_path)]) == 0
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry.from_dict(json.loads(out_path.read_text()))
        assert reg.value("run.wall_cycles", app=str(JACOBI),
                         protocol="predictive", nodes=4, block_size=32,
                         optimized=True) > 0

    def test_run_trace_flag(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["run", str(JACOBI), "--nodes", "4",
                     "--trace", str(out_path)]) == 0
        assert "VALID Chrome trace" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(doc) == []


class TestTraceCommand:
    def test_trace_writes_valid_timeline(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "events.jsonl"
        assert main(["trace", str(JACOBI), "--nodes", "4",
                     "-o", str(out_path), "--jsonl", str(jsonl_path)]) == 0
        out = capsys.readouterr().out
        assert "event kind" in out  # the per-kind count table
        assert "VALID Chrome trace" in out
        doc = json.loads(out_path.read_text())
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert names == {"machine", "node 0", "node 1", "node 2", "node 3"}
        from repro.obs import load_jsonl

        events = load_jsonl(jsonl_path)
        assert events and events[0].kind == "phase.begin"


class TestProfileCommand:
    def test_profile_prints_tables(self, capsys, tmp_path):
        json_path = tmp_path / "profile.json"
        assert main(["profile", str(JACOBI), "--nodes", "4",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Phase timeline" in out
        assert "Schedule quality" in out
        assert "coverage" in out
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro.profile/v1"
        assert doc["schedule_quality"]

    def test_profile_unoptimized_has_no_schedule_table(self, capsys):
        # no directives -> no pre-send groups -> the quality table is empty
        assert main(["profile", str(JACOBI), "--nodes", "4",
                     "--protocol", "stache", "--unoptimized"]) == 0
        assert "no pre-send activity" in capsys.readouterr().out


class TestFaultsObservability:
    def test_faults_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "faults-trace.json"
        metrics_path = tmp_path / "faults-metrics.json"
        rc = main(["faults", "--plans", "drop", "--seeds", "1",
                   "--no-traces", "--protocols", "stache",
                   "--trace", str(trace_path),
                   "--metrics-out", str(metrics_path)])
        assert rc == 0
        assert "VALID Chrome trace" in capsys.readouterr().out
        from repro.obs import MetricsRegistry, validate_chrome_trace

        assert validate_chrome_trace(
            json.loads(trace_path.read_text())) == []
        reg = MetricsRegistry.from_dict(json.loads(metrics_path.read_text()))
        assert "node.cycles" in reg.names()


class TestModelCommand:
    def test_predict_prints_summary(self, capsys):
        assert main(["model", "adaptive", "--uncalibrated"]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "calibration: identity" in out

    def test_requires_app_without_suite(self, capsys):
        assert main(["model", "--uncalibrated"]) == 2
        assert "app is required" in capsys.readouterr().err

    def test_validate_side_by_side(self, capsys):
        assert main(["model", "adaptive", "--uncalibrated",
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "rel err" in out

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "pred.json"
        assert main(["model", "adaptive", "--uncalibrated",
                     "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["run"]["model"] is True
        assert doc["wall_time"] > 0

    def test_missing_calibration_file_errors(self, capsys):
        assert main(["model", "adaptive",
                     "--calibration", "/nonexistent.json"]) == 1
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_model_backed_grid(self, tmp_path, capsys):
        out_path = tmp_path / "grid.csv"
        assert main(["sweep", "adaptive", "--model", "--uncalibrated",
                     "--axis", "msg_latency=500,1000",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        lines = out_path.read_text().splitlines()
        assert lines[0].startswith("msg_latency,")
        assert len(lines) == 3

    def test_json_export_round_trips(self, tmp_path):
        out_path = tmp_path / "grid.json"
        assert main(["sweep", "adaptive", "--model", "--uncalibrated",
                     "--axis", "block_size=32,64",
                     "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.sweep/v1"
        assert [r["block_size"] for r in doc["rows"]] == [32, 64]

    def test_requires_axes(self, capsys):
        assert main(["sweep", "adaptive", "--model"]) == 2
        assert "no sweep axes" in capsys.readouterr().err

    def test_bad_axis_rejected(self, capsys):
        assert main(["sweep", "adaptive", "--model",
                     "--axis", "page_size=512"]) == 1
        assert "error" in capsys.readouterr().err

    def test_requires_app(self, capsys):
        assert main(["sweep", "--model",
                     "--axis", "msg_latency=500"]) == 2
        assert "app is required" in capsys.readouterr().err
