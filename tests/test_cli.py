"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main

JACOBI = pathlib.Path(__file__).parent.parent / "examples/programs/jacobi.cstar"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "x.cstar"])
        assert args.protocol == "predictive"
        assert args.nodes == 8
        assert not args.unoptimized


class TestCompile(object):
    def test_compile_example(self, capsys):
        assert main(["compile", str(JACOBI)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "phase group" in out

    def test_compile_verbose_shows_reaching(self, capsys):
        assert main(["compile", str(JACOBI), "-v"]) == 0
        out = capsys.readouterr().out
        assert "reaching unstructured accesses" in out
        assert "[needs schedule]" in out

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.cstar"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_bad_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.cstar"
        bad.write_text("main() { let x = ; }")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_example(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "hit rate" in out

    def test_run_unoptimized(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4", "--unoptimized",
                     "--protocol", "stache"]) == 0
        out = capsys.readouterr().out
        assert "optimized=False" in out

    def test_run_block_size(self, capsys):
        assert main(["run", str(JACOBI), "--nodes", "4",
                     "--block-size", "128"]) == 0
        assert "block=128B" in capsys.readouterr().out


class TestOtherCommands:
    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "StacheProtocol" in out
        assert "no holes" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Adaptive" in capsys.readouterr().out

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestDumpAst:
    def test_dump_ast_round_trips(self, capsys, tmp_path):
        assert main(["compile", str(JACOBI), "--dump-ast"]) == 0
        out = capsys.readouterr().out
        ast_text = out.split("// --- analysis ---")[0]
        # the dumped AST is itself valid C** and compiles to the same analysis
        f = tmp_path / "roundtrip.cstar"
        f.write_text(ast_text)
        assert main(["compile", str(f)]) == 0
        out2 = capsys.readouterr().out
        assert "2 phase group(s) placed" in out2


class TestFaultsCommand:
    def test_list_plans_includes_crash_plans(self, capsys):
        assert main(["faults", "--list-plans"]) == 0
        out = capsys.readouterr().out
        for name in ("drop", "chaos", "crash", "crash-storm", "crash-lossy"):
            assert name in out

    def test_unknown_plan_rejected(self, capsys):
        assert main(["faults", "--plans", "no-such-plan"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_crash_campaign_smoke(self, capsys):
        rc = main(["faults", "--crash", "--seeds", "1", "--no-traces",
                   "--protocols", "stache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no coherence violations" in out
        assert "fault campaign: 3 plan(s)" in out
