"""Properties of the job partitioner and the per-job seed derivation.

The partitioner feeds the work-stealing scheduler's initial decks, so its
contract — every job appears exactly once, deterministically — is what the
farm's byte-identical aggregation ultimately rests on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.farm import FarmJob, derive_seed, partition_jobs


@given(n_jobs=st.integers(0, 200), n_workers=st.integers(1, 17))
def test_partition_is_disjoint_complete_and_deterministic(n_jobs, n_workers):
    decks = partition_jobs(n_jobs, n_workers)
    assert len(decks) == n_workers
    flat = [i for deck in decks for i in deck]
    # complete and disjoint: every job index exactly once
    assert sorted(flat) == list(range(n_jobs))
    # deterministic: a second call produces the identical layout
    assert partition_jobs(n_jobs, n_workers) == decks


@given(n_jobs=st.integers(1, 200), n_workers=st.integers(1, 17))
def test_partition_is_balanced(n_jobs, n_workers):
    sizes = [len(deck) for deck in partition_jobs(n_jobs, n_workers)]
    assert max(sizes) - min(sizes) <= 1


def test_partition_rejects_bad_inputs():
    with pytest.raises(ValueError):
        partition_jobs(-1, 2)
    with pytest.raises(ValueError):
        partition_jobs(4, 0)


@given(seed=st.integers(0, 2**32), parts=st.lists(
    st.one_of(st.integers(-5, 5), st.text(max_size=8)), max_size=4))
def test_derive_seed_is_stable_and_bounded(seed, parts):
    a = derive_seed(seed, *parts)
    assert a == derive_seed(seed, *parts)
    assert 0 <= a < 2**63


def test_derive_seed_separates_identities():
    # stable job identity, not sequential RNG state: neighbours differ
    seeds = {derive_seed(0, i) for i in range(100)}
    assert len(seeds) == 100
    assert derive_seed(0, "a", "b") != derive_seed(0, "ab")
    assert derive_seed(1, "a") != derive_seed(0, "a")


def test_farm_job_describe():
    job = FarmJob(index=3, kind="fuzz-seed", params={"seed": 1})
    assert job.describe() == "job#3 fuzz-seed"
