"""Worker-crash handling: dead workers are respawned, their jobs retried,
and the retried campaign's aggregate is identical to an undisturbed one.

Workers fork from the test process, so monkeypatching
``repro.farm.worker._before_job_hook`` here installs the hook in every
worker.  The hook ``os._exit``s mid-job — a hard crash the coordinator can
only see as process death — on the job's *first* attempt only (retries
carry an ``attempt`` marker in their params), proving one crash costs one
retry, not the campaign.
"""

import json
import os

import pytest

from repro.farm import FarmError, FarmJob, run_farm
from repro.farm import worker as farm_worker
from repro.farm.transport import LocalProcessTransport, _mp_context
from repro.obs.events import EventKind, EventTrace
from repro.verify.fuzz import fuzz

pytestmark = pytest.mark.skipif(
    _mp_context().get_start_method() != "fork",
    reason="crash-hook injection relies on fork inheritance",
)


def crash_first_attempt_of(index):
    def hook(job):
        if job.index == index and "attempt" not in job.params:
            os._exit(13)  # simulate a dying worker, not a job exception

    return hook


def test_crashed_job_is_retried_and_aggregate_unchanged(monkeypatch):
    seq = fuzz(seeds=4)

    monkeypatch.setattr(farm_worker, "_before_job_hook",
                        crash_first_attempt_of(2))
    tracer = EventTrace()
    par = fuzz(seeds=4, jobs=2, tracer=tracer)

    assert json.dumps(par.to_dict(), sort_keys=True) \
        == json.dumps(seq.to_dict(), sort_keys=True)
    kinds = tracer.counts()
    assert kinds.get(EventKind.FARM_RETRY, 0) >= 1
    # the crashed worker came back: one respawn-up beyond the initial pair
    assert kinds[EventKind.FARM_WORKER_UP] >= 3


def test_repeated_crashes_exhaust_the_retry_budget(monkeypatch):
    def always_crash(job):
        if job.index == 0:
            os._exit(13)

    monkeypatch.setattr(farm_worker, "_before_job_hook", always_crash)
    jobs = [FarmJob(index=i, kind="fuzz-seed",
                    params={"seed": i, "protocols": ["stache"],
                            "shrink": False})
            for i in range(2)]
    with pytest.raises(FarmError, match="job#0 .*retry budget"):
        run_farm(jobs, n_workers=2, max_retries=1,
                 transport=LocalProcessTransport(2), poll_interval=0.05)


def test_job_exception_fails_fast_without_retry():
    jobs = [FarmJob(index=0, kind="no-such-kind")]
    with pytest.raises(FarmError, match="no-such-kind"):
        run_farm(jobs, n_workers=2)
