"""The worker agent's initial dial must fail fast when budgeted.

``repro farm-worker --connect`` retries a refused coordinator with capped
backoff; ``--connect-attempts N`` bounds the consecutive-failure count so
a mistyped address errors out in seconds instead of spinning until the
wall-clock ``--connect-timeout``.
"""

from __future__ import annotations

import socket
import time

from repro.farm.remote import worker_agent


def refused_port() -> int:
    """A port nothing is listening on (bound once, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_attempt_budget_gives_up_with_clear_error():
    lines: list[str] = []
    t0 = time.monotonic()
    rc = worker_agent("127.0.0.1", refused_port(), connect_timeout=60.0,
                      max_attempts=2, label="t", progress=lines.append)
    elapsed = time.monotonic() - t0
    assert rc == 1
    assert elapsed < 10.0, "attempt budget did not trip before the timeout"
    tail = [line for line in lines if "giving up" in line]
    assert tail, f"no give-up line in {lines!r}"
    assert "could not reach coordinator" in tail[0]
    assert "2 attempt(s)" in tail[0]


def test_wall_clock_timeout_still_applies_without_budget():
    lines: list[str] = []
    rc = worker_agent("127.0.0.1", refused_port(), connect_timeout=0.3,
                      max_attempts=None, label="t", progress=lines.append)
    assert rc == 1
