"""The multi-host farm over loopback TCP: differential equality with
sequential runs, mid-campaign agent death, incarnation fencing, preemptive
checkpoint migration across hosts, and degradation to the local transport.

Worker agents run as threads in this process (the agent loop is
thread-hosted by design — ``worker_agent`` is the same code path the
``repro farm-worker`` CLI runs), so tests can monkeypatch
``repro.farm.worker._before_job_hook`` to kill an agent at a precise
moment via :class:`repro.farm.remote.AgentKilled`.
"""

import json
import socket
import threading
import time

import pytest

from repro.faults.campaign import run_campaign
from repro.farm import (
    FarmController,
    FarmJob,
    SocketTransport,
    run_farm,
    worker_agent,
)
from repro.farm import worker as farm_worker
from repro.farm.frames import FrameStream
from repro.farm.remote import AgentKilled
from repro.obs.events import EventKind, EventTrace
from repro.verify.fuzz import fuzz, fuzz_seed_job


def canon(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def recv_frame(link):
    """The next non-heartbeat frame (the coordinator heartbeats freely)."""
    while True:
        body = link.recv()
        if body.get("type") != "hb":
            return body


def start_agents(transport, n, **kwargs):
    kwargs.setdefault("heartbeat", 0.25)
    kwargs.setdefault("watchdog", 1.5)
    kwargs.setdefault("connect_timeout", 5.0)
    threads = []
    for i in range(n):
        t = threading.Thread(
            target=worker_agent, args=(transport.host, transport.port),
            kwargs={"label": f"test-agent-{i}", **kwargs}, daemon=True)
        t.start()
        threads.append(t)
    return threads


def join_all(threads, timeout=10.0):
    for t in threads:
        t.join(timeout=timeout)
        assert not t.is_alive(), "agent thread failed to exit"


class TestLoopbackDifferential:
    def test_fuzz_over_two_socket_agents_equals_sequential(self):
        seq = fuzz(seeds=6)
        transport = SocketTransport(2, port=0, watchdog=1.5, lease=2.0,
                                    heartbeat=0.25)
        agents = start_agents(transport, 2)
        par = fuzz(seeds=6, farm_transport=transport)
        assert seq.ok and par.ok
        assert canon(par) == canon(seq)
        join_all(agents)

    def test_fault_campaign_over_socket_agents_equals_sequential(self):
        kwargs = dict(seeds=1, variants=1, protocols=("stache",),
                      traces_dir=None, shrink=False)
        seq = run_campaign(**kwargs)
        transport = SocketTransport(2, port=0, watchdog=1.5, lease=2.0,
                                    heartbeat=0.25)
        agents = start_agents(transport, 2)
        par = run_campaign(farm_transport=transport, **kwargs)
        assert canon(par) == canon(seq)
        join_all(agents)


class TestAgentDeath:
    def test_agent_killed_mid_campaign_report_unchanged(self, monkeypatch):
        seq = fuzz(seeds=5)

        killed = []

        def kill_first_attempt_of_job2(job):
            if job.index == 2 and "attempt" not in job.params and not killed:
                killed.append(job.index)
                raise AgentKilled()

        monkeypatch.setattr(farm_worker, "_before_job_hook",
                            kill_first_attempt_of_job2)
        tracer = EventTrace()
        transport = SocketTransport(2, port=0, watchdog=1.0, lease=1.5,
                                    heartbeat=0.2, tracer=tracer)
        agents = start_agents(transport, 2)
        par = fuzz(seeds=5, farm_transport=transport, tracer=tracer)
        assert killed, "the kill hook never fired"
        assert canon(par) == canon(seq)
        counts = tracer.counts()
        assert counts.get(EventKind.FARM_RETRY, 0) >= 1
        assert counts.get(EventKind.FARM_WORKER_DOWN, 0) >= 1
        # one agent died silently and never returns; the survivor exits
        live = [t for t in agents if t.is_alive()]
        join_all(live)


class TestIncarnationFence:
    def test_stale_incarnation_result_is_fenced(self):
        transport = SocketTransport(1, port=0, watchdog=5.0, lease=30.0,
                                    heartbeat=0.2)
        started = threading.Event()

        def run_start():
            transport.start(None)
            started.set()

        starter = threading.Thread(target=run_start, daemon=True)
        starter.start()
        try:
            sock1 = socket.create_connection(
                (transport.host, transport.port), timeout=5)
            link1 = FrameStream(sock1)
            link1.send({"type": "hello", "host": "fake", "inc": 1,
                        "frames": 1})
            assert recv_frame(link1)["type"] == "welcome"
            assert started.wait(timeout=5)

            job = FarmJob(index=0, kind="fuzz-seed", params={"seed": 0})
            transport.send(0, ("job", job))
            assert recv_frame(link1)["type"] == "job"

            # the host "reboots": a new session with a larger incarnation
            sock2 = socket.create_connection(
                (transport.host, transport.port), timeout=5)
            link2 = FrameStream(sock2)
            link2.send({"type": "hello", "host": "fake", "inc": 2,
                        "frames": 1})
            assert recv_frame(link2)["type"] == "welcome"

            # a ghost: the pre-reboot job's result under the old incarnation
            link2.send({"type": "result", "job": 0, "inc": 1,
                        "payload": {"ghost": True}})
            assert transport.recv(timeout=1.0) is None
            assert transport.ledger.ghosts >= 1

            # the reboot expired the old lease; the job is reclaimable
            assert (0, 0) in transport.reclaim_expired()

            # re-dispatched under the new incarnation, the result lands
            transport.send(0, ("job", job))
            assert recv_frame(link2)["type"] == "job"
            link2.send({"type": "result", "job": 0, "inc": 2,
                        "payload": {"ghost": False}})
            message = transport.recv(timeout=2.0)
            assert message == ("result", 0, 0, {"ghost": False})

            # a duplicate of the accepted result is fenced too
            link2.send({"type": "result", "job": 0, "inc": 2,
                        "payload": {"ghost": False}})
            assert transport.recv(timeout=0.5) is None
        finally:
            transport.stop()

    def test_stale_session_cannot_reclaim_its_slot(self):
        transport = SocketTransport(1, port=0, watchdog=5.0,
                                    heartbeat=0.2)
        starter = threading.Thread(target=transport.start, args=(None,),
                                   daemon=True)
        starter.start()
        try:
            sock1 = socket.create_connection(
                (transport.host, transport.port), timeout=5)
            link1 = FrameStream(sock1)
            link1.send({"type": "hello", "host": "fake", "inc": 5,
                        "frames": 1})
            assert recv_frame(link1)["type"] == "welcome"

            # a duplicate/ancient session of the same host is refused
            sock2 = socket.create_connection(
                (transport.host, transport.port), timeout=5)
            link2 = FrameStream(sock2)
            link2.send({"type": "hello", "host": "fake", "inc": 5,
                        "frames": 1})
            assert recv_frame(link2)["type"] == "unwelcome"
        finally:
            transport.stop()


class TestPreemptionMigration:
    def test_preempted_envelope_resumes_on_another_host(self):
        kwargs = dict(seeds=1, variants=1, protocols=("stache",),
                      traces_dir=None, shrink=False)
        seq = run_campaign(**kwargs)

        controller = FarmController()
        for index in range(64):
            controller.preempt(index)
        tracer = EventTrace()
        transport = SocketTransport(2, port=0, watchdog=2.0, lease=3.0,
                                    heartbeat=0.25, tracer=tracer)
        agents = start_agents(transport, 2)
        par = run_campaign(farm_transport=transport,
                           farm_controller=controller, tracer=tracer,
                           **kwargs)
        assert canon(par) == canon(seq)
        assert tracer.counts().get(EventKind.FARM_PREEMPT, 0) >= 1
        join_all(agents)


class TestDegradeToLocal:
    def test_all_hosts_lost_finishes_on_local_transport(self, monkeypatch):
        specs = [{"seed": s, "protocols": ["stache"], "shrink": False}
                 for s in range(3)]
        expected = [fuzz_seed_job(dict(spec)) for spec in specs]

        killed = []

        def kill_once(job):
            if not killed and "attempt" not in job.params:
                killed.append(job.index)
                raise AgentKilled()

        monkeypatch.setattr(farm_worker, "_before_job_hook", kill_once)
        tracer = EventTrace()
        transport = SocketTransport(1, port=0, watchdog=0.8, lease=1.2,
                                    heartbeat=0.2, degrade_after=0.5,
                                    tracer=tracer)
        agents = start_agents(transport, 1, watchdog=0.8,
                              connect_timeout=3.0)
        jobs = [FarmJob(index=i, kind="fuzz-seed", params=spec)
                for i, spec in enumerate(specs)]
        farm = run_farm(jobs, transport=transport, tracer=tracer,
                        liveness_interval=0.2)
        assert killed, "the kill hook never fired"
        assert farm.degraded
        assert farm.worker_crashes >= 1
        assert [farm.results[i] for i in range(3)] == expected
        assert tracer.counts().get(EventKind.FARM_DEGRADE, 0) == 1
        # the killed agent's thread exits on its own (dead, no reconnect)
        join_all(agents)

    def test_disabled_fallback_raises_instead(self, monkeypatch):
        from repro.farm import FarmError

        def kill_always(job):
            raise AgentKilled()

        monkeypatch.setattr(farm_worker, "_before_job_hook", kill_always)
        transport = SocketTransport(1, port=0, watchdog=0.8, lease=1.2,
                                    heartbeat=0.2, degrade_after=0.5,
                                    fallback_local=0)
        start_agents(transport, 1, watchdog=0.8, connect_timeout=3.0)
        jobs = [FarmJob(index=0, kind="fuzz-seed",
                        params={"seed": 0, "protocols": ["stache"],
                                "shrink": False})]
        with pytest.raises(FarmError, match="local fallback"):
            run_farm(jobs, transport=transport, liveness_interval=0.2)


class TestAssembly:
    def test_start_times_out_without_enough_agents(self):
        from repro.farm import FarmError

        transport = SocketTransport(2, port=0, accept_timeout=0.5)
        with pytest.raises(FarmError, match="connected"):
            transport.start(None)

    def test_agent_gives_up_without_a_coordinator(self):
        # a port with nothing listening: bind-then-close to reserve one
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = worker_agent("127.0.0.1", port, connect_timeout=0.6,
                          backoff_cap=0.2)
        assert rc == 1
