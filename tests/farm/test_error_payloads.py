"""Worker error payloads carry the full traceback, on every backend.

A farmed job failure must be debuggable from the coordinator's
:class:`FarmError` alone — without re-running the campaign sequentially —
so the worker catch-alls (process, inline, and remote agent) all attach
``traceback.format_exc()`` to the error message.
"""

import threading

import pytest

from repro.farm import FarmError, FarmJob, InlineTransport, run_farm
from repro.farm import worker as farm_worker
from repro.farm.remote import SocketTransport, worker_agent
from repro.farm.transport import LocalProcessTransport, _mp_context


def explosive_hook(job):
    raise ValueError("synthetic job bug")


@pytest.fixture()
def explode(monkeypatch):
    monkeypatch.setattr(farm_worker, "_before_job_hook", explosive_hook)


JOB = [FarmJob(index=0, kind="fuzz-seed",
               params={"seed": 0, "protocols": ["stache"], "shrink": False})]


def assert_debuggable(excinfo):
    message = str(excinfo.value)
    assert "ValueError: synthetic job bug" in message
    assert "Traceback (most recent call last)" in message
    assert "explosive_hook" in message  # the frames, not just the summary


def test_inline_error_payload_has_traceback(explode):
    with pytest.raises(FarmError) as excinfo:
        run_farm(JOB, transport=InlineTransport())
    assert_debuggable(excinfo)


@pytest.mark.skipif(_mp_context().get_start_method() != "fork",
                    reason="hook injection relies on fork inheritance")
def test_process_worker_error_payload_has_traceback(explode):
    with pytest.raises(FarmError) as excinfo:
        run_farm(JOB * 1, transport=LocalProcessTransport(1))
    assert_debuggable(excinfo)


def test_remote_agent_error_payload_has_traceback(explode):
    transport = SocketTransport(1, port=0, watchdog=2.0, heartbeat=0.25)
    agent = threading.Thread(
        target=worker_agent, args=(transport.host, transport.port),
        kwargs={"label": "err-agent", "heartbeat": 0.25, "watchdog": 2.0,
                "connect_timeout": 5.0}, daemon=True)
    agent.start()
    with pytest.raises(FarmError) as excinfo:
        run_farm(JOB, transport=transport)
    assert_debuggable(excinfo)
    agent.join(timeout=10)
    assert not agent.is_alive()
