"""LocalProcessTransport.stop(): shutdown must never leak a live child.

The regression scenario from the seed: a worker that ignores both the
stop message and SIGTERM used to survive ``stop()`` as a zombie; the
kill() escalation now puts it down within the grace budget.
"""

import signal
import time

import pytest

from repro.farm.transport import LocalProcessTransport, _mp_context

pytestmark = pytest.mark.skipif(
    _mp_context().get_start_method() != "fork",
    reason="the stubborn worker relies on fork-visible module functions",
)


def stubborn_main(wid, job_q, result_q, preempt_flag):
    """Ignores the stop message (never reads its queue) and SIGTERM."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    result_q.put(("up", wid, None, None))
    while True:
        time.sleep(60)


def obedient_main(wid, job_q, result_q, preempt_flag):
    result_q.put(("up", wid, None, None))
    while True:
        if job_q.get()[0] == "stop":
            return


def test_sigterm_ignoring_worker_is_killed():
    transport = LocalProcessTransport(1, stop_grace=0.3, kill_grace=1.0)
    transport.start(stubborn_main)
    assert transport.recv(timeout=5.0) == ("up", 0, None, None)
    assert transport.alive(0)
    t0 = time.monotonic()
    transport.stop()
    assert not transport.alive(0), "stop() left a live worker behind"
    # bounded: stop grace + SIGTERM grace + SIGKILL grace, with slack
    assert time.monotonic() - t0 < 10.0


def test_cooperative_worker_stops_without_escalation():
    transport = LocalProcessTransport(1, stop_grace=5.0, kill_grace=1.0)
    transport.start(obedient_main)
    assert transport.recv(timeout=5.0) == ("up", 0, None, None)
    transport.stop()
    assert not transport.alive(0)
