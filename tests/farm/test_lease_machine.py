"""The lease/heartbeat/incarnation state machine (repro.farm.remote.HostLedger).

The Hypothesis property drives a miniature coordinator over randomized
traces of heartbeats, silences, disconnects, rejoins, lost dispatches,
and stale deliveries — all against a virtual clock — and asserts the
exactly-once contract the real coordinator relies on:

* every job's result is accepted exactly once;
* a result stamped with a stale incarnation (or arriving after its lease
  was reclaimed) is never accepted;
* no job is ever lost — whatever the trace did, a final drain with one
  healthy host completes everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farm.remote import HostLedger

WATCHDOG = 3.0
LEASE = 6.0
HOSTS = ("alpha", "beta")
N_SLOTS = 2
N_JOBS = 5


class MiniCoordinator:
    """The coordinator's lease-facing logic, minus transports and threads."""

    def __init__(self):
        self.ledger = HostLedger(N_SLOTS, watchdog=WATCHDOG, lease=LEASE)
        self.now = 0.0
        self.queued = list(range(N_JOBS))
        self.in_flight = {}  # job -> slot
        self.accepted = {j: 0 for j in range(N_JOBS)}
        self.incs = {h: 0 for h in HOSTS}
        self.slots = {}  # host -> slot while connected

    # -- trace operations ------------------------------------------------------

    def tick(self, dt):
        self.now += dt
        self.reclaim()

    def connect(self, host):
        self.incs[host] += 1
        slot = self.ledger.claim_slot(host, self.incs[host], self.now)
        if slot is None:
            self.incs[host] -= 1  # refused; the session never existed
            return
        # a slot takeover implicitly disconnects whoever held it
        for other, s in list(self.slots.items()):
            if s == slot and other != host:
                del self.slots[other]
        self.slots[host] = slot
        self.reclaim()

    def disconnect(self, host):
        slot = self.slots.pop(host, None)
        if slot is not None:
            self.ledger.disconnect(slot, self.now)

    def heartbeat(self, host, honest):
        slot = self.slots.get(host)
        if slot is None:
            return
        running = [j for j, s in self.in_flight.items() if s == slot]
        if not honest:
            running = []  # an amnesiac host stops naming its jobs
        self.ledger.heartbeat(slot, running, self.now)

    def dispatch(self, host, lost):
        slot = self.slots.get(host)
        if slot is None or not self.queued:
            return
        if not self.ledger.alive(slot, self.now):
            return
        job = self.queued.pop(0)
        self.ledger.dispatch(slot, job, self.now, lost=lost)
        self.in_flight[job] = slot

    def deliver(self, host, stale_by):
        """The host reports a result for one of its jobs, possibly under
        an old incarnation (a ghost from before a reconnect)."""
        slot = self.slots.get(host)
        if slot is None:
            return
        mine = [j for j, s in self.in_flight.items() if s == slot]
        if not mine:
            return
        job = mine[0]
        inc = self.incs[host] - stale_by
        ok = self.ledger.admit(slot, inc, job)
        if ok:
            assert stale_by == 0, (
                f"stale incarnation {inc} accepted for job {job}")
            self.ledger.complete(job)
            assert self.in_flight.pop(job) == slot
            self.accepted[job] += 1
            assert self.accepted[job] == 1, f"job {job} accepted twice"

    def reclaim(self):
        for slot, job in self.ledger.expired_jobs(self.now):
            if self.in_flight.get(job) == slot:
                del self.in_flight[job]
                self.queued.append(job)
        self.queued.sort()


OPS = st.one_of(
    st.tuples(st.just("tick"), st.floats(0.1, 8.0)),
    st.tuples(st.just("connect"), st.sampled_from(HOSTS)),
    st.tuples(st.just("disconnect"), st.sampled_from(HOSTS)),
    st.tuples(st.just("hb"), st.sampled_from(HOSTS), st.booleans()),
    st.tuples(st.just("dispatch"), st.sampled_from(HOSTS), st.booleans()),
    st.tuples(st.just("deliver"), st.sampled_from(HOSTS),
              st.integers(0, 2)),
)


@settings(max_examples=200, deadline=None)
@given(trace=st.lists(OPS, max_size=80))
def test_exactly_once_under_randomized_traces(trace):
    mini = MiniCoordinator()
    for op in trace:
        kind, *rest = op
        if kind == "tick":
            mini.tick(rest[0])
        elif kind == "connect":
            mini.connect(rest[0])
        elif kind == "disconnect":
            mini.disconnect(rest[0])
        elif kind == "hb":
            mini.heartbeat(*rest)
        elif kind == "dispatch":
            mini.dispatch(*rest)
        elif kind == "deliver":
            mini.deliver(*rest)
        # the exactly-once invariant holds at every step, not just the end
        assert all(n <= 1 for n in mini.accepted.values())

    # drain: one healthy host finishes whatever the trace left behind
    mini.tick(LEASE + 1.0)  # expire every stranded lease
    mini.connect("alpha")
    for _ in range(4 * N_JOBS):
        if all(n == 1 for n in mini.accepted.values()):
            break
        mini.tick(0.5)
        mini.heartbeat("alpha", True)
        mini.dispatch("alpha", False)
        mini.deliver("alpha", 0)
    assert all(n == 1 for n in mini.accepted.values()), (
        f"jobs lost: {mini.accepted}")


# -- directed claim_slot edge cases -------------------------------------------


def test_same_host_must_present_larger_incarnation():
    ledger = HostLedger(2)
    assert ledger.claim_slot("a", 1, 0.0) == 0
    assert ledger.claim_slot("a", 1, 1.0) is None  # duplicate session
    assert ledger.claim_slot("a", 0, 1.0) is None  # ancient session
    assert ledger.claim_slot("a", 2, 1.0) == 0     # genuine reboot


def test_reconnect_expires_old_leases_immediately():
    ledger = HostLedger(1, lease=100.0)
    ledger.claim_slot("a", 1, 0.0)
    ledger.dispatch(0, 7, 0.0)
    assert ledger.expired_jobs(1.0) == []
    ledger.claim_slot("a", 2, 1.0)
    assert ledger.expired_jobs(1.0) == [(0, 7)]


def test_full_healthy_farm_refuses_extra_hosts():
    ledger = HostLedger(1, watchdog=3.0)
    assert ledger.claim_slot("a", 1, 0.0) == 0
    assert ledger.claim_slot("b", 1, 1.0) is None  # a is alive
    assert ledger.claim_slot("b", 1, 10.0) == 0    # a went silent


def test_heartbeat_renews_only_named_jobs():
    ledger = HostLedger(1, lease=2.0)
    ledger.claim_slot("a", 1, 0.0)
    ledger.dispatch(0, 1, 0.0)
    ledger.dispatch(0, 2, 0.0)
    ledger.heartbeat(0, [1], 1.5)  # job 2 is not named: lease keeps aging
    assert ledger.expired_jobs(2.5) == [(0, 2)]
    assert ledger.expired_jobs(4.0) == [(0, 1)]


def test_lost_dispatch_lease_is_born_expired():
    ledger = HostLedger(1)
    ledger.claim_slot("a", 1, 0.0)
    ledger.dispatch(0, 3, 5.0, lost=True)
    assert ledger.expired_jobs(5.0) == [(0, 3)]
