"""Wire framing (repro.farm.frames): length prefixes, checksums, seq/ack.

All tests run over a local ``socketpair`` — the framing layer only sees a
connected socket, so this exercises exactly what the farm link uses.
"""

import json
import socket
import struct

import pytest

from repro.farm.frames import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameStream,
    LinkClosed,
    canonical,
    checksum,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield FrameStream(a), FrameStream(b)
    a.close()
    b.close()


def test_round_trip_and_sequencing(pair):
    tx, rx = pair
    bodies = [{"type": "hb"}, {"type": "job", "job": {"index": 3}},
              {"type": "result", "payload": {"x": [1, 2, {"y": None}]}}]
    for body in bodies:
        tx.send(body)
    for body in bodies:
        assert rx.recv() == body
    assert rx.recv_seq == 3
    assert tx.send_seq == 3


def test_acks_flow_back(pair):
    tx, rx = pair
    tx.send({"n": 1})
    tx.send({"n": 2})
    assert tx.unacked == 2
    rx.recv(), rx.recv()
    rx.send({"type": "hb"})  # carries ack=2
    tx.recv()
    assert tx.unacked == 0


def _raw_frame(body, seq, ack=0, declared_sum=None):
    payload = canonical(body)
    frame = canonical({
        "ack": ack, "body": body, "seq": seq,
        "sum": declared_sum if declared_sum is not None
        else checksum(payload),
    })
    return struct.pack(">I", len(frame)) + frame


def test_duplicate_seq_is_dropped(pair):
    tx, rx = pair
    raw = _raw_frame({"n": 1}, seq=1)
    tx._sock.sendall(raw + raw + _raw_frame({"n": 2}, seq=2))
    assert rx.recv() == {"n": 1}
    assert rx.recv() == {"n": 2}  # the replayed seq=1 was skipped
    assert rx.dups_dropped == 1


def test_sequence_gap_is_an_error(pair):
    tx, rx = pair
    tx._sock.sendall(_raw_frame({"n": 1}, seq=1))
    tx._sock.sendall(_raw_frame({"n": 3}, seq=3))
    assert rx.recv() == {"n": 1}
    with pytest.raises(FrameError, match="sequence gap"):
        rx.recv()


def test_checksum_mismatch_is_an_error(pair):
    tx, rx = pair
    tx._sock.sendall(_raw_frame({"n": 1}, seq=1, declared_sum="0" * 16))
    with pytest.raises(FrameError, match="checksum"):
        rx.recv()


def test_undecodable_frame_is_an_error(pair):
    tx, rx = pair
    junk = b"not json at all"
    tx._sock.sendall(struct.pack(">I", len(junk)) + junk)
    with pytest.raises(FrameError, match="undecodable"):
        rx.recv()


def test_oversize_frame_is_an_error(pair):
    tx, rx = pair
    tx._sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(FrameError, match="oversize"):
        rx.recv()


def test_eof_raises_link_closed(pair):
    tx, rx = pair
    tx.send({"n": 1})
    tx._sock.close()
    assert rx.recv() == {"n": 1}
    with pytest.raises(LinkClosed):
        rx.recv()


def test_timeout_mid_frame_is_resumable(pair):
    tx, rx = pair
    raw = _raw_frame({"big": "x" * 2000}, seq=1)
    rx._sock.settimeout(0.05)
    tx._sock.sendall(raw[:100])  # partial frame, then silence
    with pytest.raises((TimeoutError, socket.timeout)):
        rx.recv()
    tx._sock.sendall(raw[100:])
    assert rx.recv() == {"big": "x" * 2000}


def test_canonical_is_key_order_independent():
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})
    body = json.loads(canonical({"a": [1, 2], "b": None}))
    assert checksum(canonical(body)) == checksum(canonical({"b": None,
                                                            "a": [1, 2]}))
