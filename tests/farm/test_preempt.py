"""Checkpoint-sliced preemption: pause a job at a quiescent boundary,
resume it anywhere, and get bit-identical observables.

Covers both layers: :func:`repro.farm.preempt.sliced_run` directly (the
worker-side mechanism) and a farmed campaign driven through a
:class:`~repro.farm.FarmController` (the coordinator-side valve), using the
synchronous inline transport so the preemption point is deterministic.
"""

import json

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.plan import BUNDLED_PLANS
from repro.farm import FarmController, FarmJob, InlineTransport, run_farm
from repro.farm.preempt import (
    deserialize_observables,
    serialize_observables,
    sliced_run,
)
from repro.obs.events import EventKind, EventTrace
from repro.verify.oracle import run_workload
from repro.verify.workload import generate_workload


@pytest.fixture(scope="module")
def chaos_reference():
    workload = generate_workload(0)
    plan = BUNDLED_PLANS["chaos"].with_(seed=7)
    return workload, plan, run_workload(workload, "stache", fault_plan=plan)


def same_observables(a, b) -> bool:
    return (a.readers == b.readers and a.writers == b.writers
            and a.image == b.image and a.stats.wall_time == b.stats.wall_time
            and len(a.fault_events) == len(b.fault_events))


def test_uninterrupted_sliced_run_matches_run_workload(chaos_reference):
    workload, plan, ref = chaos_reference
    status, obs = sliced_run(workload, "stache", fault_plan=plan)
    assert status == "done"
    assert same_observables(obs, ref)


def test_preempt_then_resume_is_bit_identical(chaos_reference):
    workload, plan, ref = chaos_reference
    calls = [0]

    def preempt_after_first_slice():
        calls[0] += 1
        return calls[0] > 1

    status, envelope = sliced_run(workload, "stache", fault_plan=plan,
                                  should_preempt=preempt_after_first_slice)
    assert status == "preempted"
    # the envelope is transport-safe
    envelope = json.loads(json.dumps(envelope))
    status, obs = sliced_run(workload, "stache", fault_plan=plan,
                             resume=envelope)
    assert status == "done"
    assert same_observables(obs, ref)


def test_envelope_survives_the_farm_wire_format(chaos_reference):
    """Checkpoint migration depends on envelopes being JSON-portable:
    the multi-host farm ships them through canonical frame encoding
    (repro.farm.frames), and the resumed run must stay bit-identical."""
    from repro.farm.frames import canonical

    workload, plan, ref = chaos_reference
    calls = [0]

    def preempt_after_first_slice():
        calls[0] += 1
        return calls[0] > 1

    status, envelope = sliced_run(workload, "stache", fault_plan=plan,
                                  should_preempt=preempt_after_first_slice)
    assert status == "preempted"
    # exactly what a progress frame does to the envelope on the wire
    wire = json.loads(canonical({"payload": envelope}))["payload"]
    status, obs = sliced_run(workload, "stache", fault_plan=plan,
                             resume=wire)
    assert status == "done"
    assert same_observables(obs, ref)


def test_observables_serialization_round_trips(chaos_reference):
    _, _, ref = chaos_reference
    wire = json.loads(json.dumps(serialize_observables(ref)))
    back = deserialize_observables(wire)
    assert back.readers == ref.readers
    assert back.writers == ref.writers
    assert back.image == ref.image


def test_controller_preempts_farmed_campaign_with_identical_report():
    kwargs = dict(seeds=1, variants=1, protocols=("stache",),
                  traces_dir=None, shrink=False)
    seq = run_campaign(**kwargs)

    controller = FarmController()
    tracer = EventTrace()
    # ask to preempt every cell job; each is requeued once with a resume
    # envelope and finished by the same (only) inline worker
    for index in range(64):
        controller.preempt(index)
    par = run_campaign(jobs=2, farm_transport=InlineTransport(),
                       farm_controller=controller, tracer=tracer, **kwargs)

    assert json.dumps(par.to_dict(), sort_keys=True) \
        == json.dumps(seq.to_dict(), sort_keys=True)
    assert tracer.counts().get(EventKind.FARM_PREEMPT, 0) >= 1


def test_farm_result_counts_preemptions():
    controller = FarmController()
    controller.preempt(0)
    spec = {"workload": {"type": "seed", "seed": 0, "name": "seed0"},
            "w_index": 0, "plan_name": "chaos",
            "plan": BUNDLED_PLANS["chaos"].to_dict(), "variant": 0,
            "protocols": ["stache"], "shrink": False, "fast": False}
    job = FarmJob(index=0, kind="fault-cell", params=spec, preemptible=True)
    farm = run_farm([job], transport=InlineTransport(),
                    controller=controller)
    assert farm.preemptions == 1
    assert 0 in farm.results
