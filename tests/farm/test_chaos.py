"""ChaosTransport: seeded transport-fault injection that must never
change a campaign's report.

The unit tests drive the chaos draw against a recording fake; the
integration test farms a fuzz campaign over loopback sockets with chaos
armed and compares the report byte-for-byte against the sequential run —
the tentpole acceptance criterion.
"""

import json
import threading
import time

import pytest

from repro.faults.plan import FaultPlan
from repro.farm import ChaosTransport, FarmError, FarmJob, SocketTransport
from repro.farm.chaos import DEFAULT_CHAOS_PLAN
from repro.farm.remote import worker_agent
from repro.verify.fuzz import fuzz


class RecordingInner:
    """A fake inner transport that records what chaos lets through."""

    n_workers = 2
    can_respawn = False

    def __init__(self):
        self.sent = []
        self.lost = []
        self.severed = []

    def send(self, wid, message):
        self.sent.append((wid, message[1].index))

    def note_lost_dispatch(self, wid, job_index):
        self.lost.append((wid, job_index))

    def force_disconnect(self, wid):
        self.severed.append(wid)

    def reclaim_expired(self):
        return []


def jobs(n):
    return [FarmJob(index=i, kind="fuzz-seed", params={}) for i in range(n)]


def drive(plan, seed, n=120):
    inner = RecordingInner()
    chaos = ChaosTransport(inner, plan, seed=seed, delay_cap=0.01)
    for job in jobs(n):
        chaos.send(0, ("job", job))
    time.sleep(0.1)  # let delay timers fire
    return inner, chaos


def test_chaos_draws_are_seed_deterministic():
    plan = FaultPlan(name="t", drop_rate=0.2, dup_rate=0.2, delay_rate=0.2,
                     crash_rate=0.1)
    a_inner, a = drive(plan, seed=42)
    b_inner, b = drive(plan, seed=42)
    assert a_inner.lost == b_inner.lost
    assert a_inner.severed == b_inner.severed
    assert (a.drops, a.dups, a.delays, a.disconnects) \
        == (b.drops, b.dups, b.delays, b.disconnects)
    c_inner, c = drive(plan, seed=43)
    assert (a.drops, a.dups, a.delays, a.disconnects) \
        != (c.drops, c.dups, c.delays, c.disconnects)


def test_every_effect_fires_and_accounts():
    inner, chaos = drive(DEFAULT_CHAOS_PLAN, seed=1, n=400)
    assert chaos.drops > 0 and chaos.dups > 0
    assert chaos.delays > 0 and chaos.disconnects > 0
    # every dropped dispatch was reported for lease accounting
    assert len(inner.lost) == chaos.drops
    assert len(inner.severed) == chaos.disconnects
    # nothing simply vanished: sends + losses cover all draws (dups add
    # an extra send each, delays land after the timer)
    assert len(inner.sent) == 400 - chaos.drops + chaos.dups


def test_control_messages_are_never_perturbed():
    inner = RecordingInner()
    inner.stopped = []
    inner.send = lambda wid, m: inner.stopped.append(m)
    chaos = ChaosTransport(inner, FaultPlan(name="t", drop_rate=1.0),
                           seed=0)
    chaos.send(0, ("stop",))
    assert inner.stopped == [("stop",)]


def test_drop_injection_requires_lease_accounting():
    class NoAccounting:
        n_workers = 1

    with pytest.raises(FarmError, match="lost"):
        ChaosTransport(NoAccounting(), FaultPlan(name="t", drop_rate=0.5))
    # a drop-free plan is fine on such a transport
    ChaosTransport(NoAccounting(), FaultPlan(name="t"))


def test_fuzz_under_chaos_is_byte_identical_to_sequential():
    seq = fuzz(seeds=6)
    transport = SocketTransport(2, port=0, watchdog=1.5, lease=2.0,
                                heartbeat=0.25)
    chaos = ChaosTransport(transport, seed=7)
    agents = [threading.Thread(
        target=worker_agent, args=(transport.host, transport.port),
        kwargs={"label": f"chaos-agent-{i}", "heartbeat": 0.25,
                "watchdog": 1.5, "connect_timeout": 5.0}, daemon=True)
        for i in range(2)]
    for t in agents:
        t.start()
    par = fuzz(seeds=6, farm_transport=chaos)
    assert json.dumps(par.to_dict(), sort_keys=True) \
        == json.dumps(seq.to_dict(), sort_keys=True)
    assert (chaos.drops + chaos.dups + chaos.delays
            + chaos.disconnects) > 0, "chaos never fired; weaken the seed"
    for t in agents:
        t.join(timeout=10)
        assert not t.is_alive()
