"""The work-stealing scheduler's deck discipline, in isolation.

Pure data-structure tests: no transport, no processes.  The coordinator
trusts exactly the behaviours pinned here — owner pops its own deck front,
thieves take the richest deck's back, crash requeues jump the owner's
queue — so the schedule is reproducible given the same completion order.
"""

import pytest

from repro.farm import Assignment, FarmJob, WorkStealingScheduler


def make_jobs(n):
    return [FarmJob(index=i, kind="test", params={"i": i}) for i in range(n)]


def test_owner_drains_its_own_deck_front_first():
    sched = WorkStealingScheduler(make_jobs(6), n_workers=2)
    # round-robin decks: worker0 owns 0,2,4; worker1 owns 1,3,5
    order = []
    for _ in range(3):
        a = sched.acquire(0)
        order.append(a.job.index)
        assert a.stolen_from is None
        sched.complete(a.job.index)
    assert order == [0, 2, 4]


def test_idle_worker_steals_back_of_richest_deck():
    sched = WorkStealingScheduler(make_jobs(6), n_workers=3)
    # drain worker 0's deck (jobs 0, 3)
    for _ in range(2):
        sched.complete(sched.acquire(0).job.index)
    # worker 1 and 2 both hold 2 jobs; tie breaks to the lowest id (1),
    # and the thief takes the BACK of the victim's deck (job 4)
    a = sched.acquire(0)
    assert a == Assignment(worker=0, job=sched.job(4), stolen_from=1)


def test_acquire_returns_none_when_everything_is_in_flight():
    sched = WorkStealingScheduler(make_jobs(2), n_workers=2)
    assert sched.acquire(0) is not None
    assert sched.acquire(1) is not None
    assert sched.acquire(0) is None
    assert sched.outstanding == 2  # both still in flight
    assert sched.queued == 0


def test_requeue_puts_job_at_front_of_owner_deck():
    sched = WorkStealingScheduler(make_jobs(4), n_workers=2)
    a = sched.acquire(0)  # job 0
    sched.requeue(a.job)  # crash: back to worker 0's deck, at the front
    assert sched.in_flight == {}
    again = sched.acquire(0)
    assert again.job.index == 0  # retried before fresh work


def test_replace_swaps_the_job_record():
    sched = WorkStealingScheduler(make_jobs(2), n_workers=1)
    fresh = FarmJob(index=1, kind="test", params={"resume": {"at": 3}})
    sched.replace(fresh)
    assert sched.job(1).params == {"resume": {"at": 3}}


def test_running_on_reports_in_flight_jobs_per_worker():
    sched = WorkStealingScheduler(make_jobs(4), n_workers=2)
    sched.acquire(0)
    sched.acquire(1)
    assert [j.index for j in sched.running_on(0)] == [0]
    assert [j.index for j in sched.running_on(1)] == [1]
    assert sched.running_on(0)[0].kind == "test"


def test_outstanding_counts_down_to_zero():
    sched = WorkStealingScheduler(make_jobs(5), n_workers=2)
    seen = []
    while sched.outstanding:
        a = sched.acquire(0) or sched.acquire(1)
        seen.append(a.job.index)
        sched.complete(a.job.index)
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_duplicate_job_indices_rejected():
    jobs = [FarmJob(index=0, kind="test"), FarmJob(index=0, kind="test")]
    with pytest.raises(ValueError):
        WorkStealingScheduler(jobs, n_workers=1)
