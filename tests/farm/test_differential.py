"""The farm's headline contract: ``--jobs N`` == ``--jobs 1``, byte for byte.

Each campaign's report is canonicalized as sorted JSON of its ``to_dict``
form (which deliberately excludes wall-clock fields) and compared across
worker counts.  Scheduling, stealing, and completion order must all be
invisible in the aggregate — including in failing campaigns, where the
violation records themselves must match.
"""

import json

import pytest

from repro.core.factory import PROTOCOLS
from repro.faults.campaign import run_campaign
from repro.verify.fuzz import fuzz

from tests.verify.test_fuzz import DroppedAck


def canon(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


class TestVerifyDifferential:
    def test_fuzz_jobs4_equals_jobs1(self):
        seq = fuzz(seeds=6)
        par = fuzz(seeds=6, jobs=4)
        assert seq.ok and par.ok
        assert canon(par) == canon(seq)

    def test_fuzz_violations_identical_across_jobs(self, monkeypatch):
        monkeypatch.setitem(PROTOCOLS, "stache", DroppedAck)
        seq = fuzz(seeds=3, protocols=["stache"], shrink=True)
        par = fuzz(seeds=3, protocols=["stache"], shrink=True, jobs=3)
        assert not seq.ok and not par.ok
        assert canon(par) == canon(seq)
        # the farmed violation replays with the same printed command
        assert par.violations[0].report() == seq.violations[0].report()


class TestFaultsDifferential:
    def test_campaign_jobs2_equals_jobs1(self):
        kwargs = dict(seeds=1, variants=1, protocols=("stache",),
                      traces_dir=None, shrink=False)
        seq = run_campaign(**kwargs)
        par = run_campaign(jobs=2, **kwargs)
        assert seq.ok and par.ok
        assert canon(par) == canon(seq)
        assert par.runs == seq.runs

    def test_doomed_plan_failures_identical_across_jobs(self):
        from repro.faults import BUNDLED_PLANS
        from repro.faults.plan import FaultPlan

        doomed = {"doomed": FaultPlan(name="doomed", drop_rate=1.0, seed=5),
                  "delay": BUNDLED_PLANS["delay"]}
        kwargs = dict(plans=doomed, seeds=1, variants=1,
                      protocols=("stache",), traces_dir=None, shrink=True)
        seq = run_campaign(**kwargs)
        par = run_campaign(jobs=3, **kwargs)
        assert not seq.ok and not par.ok
        assert canon(par) == canon(seq)
        assert len(par.failures) == len(seq.failures)
        # scripted reproducers survive the farm round-trip intact
        assert (par.failures[0].scripted_plan.to_dict()
                == seq.failures[0].scripted_plan.to_dict())


class TestBenchDifferential:
    def test_bench_payload_sim_results_identical_across_jobs(self):
        from repro.bench import perf

        tiny = [perf.BenchCase(f"tiny{i}/lockstep", perf.MICROBENCH,
                               "predictive", True, 32, dict(ops=300), "quick")
                for i in range(3)]
        seq = perf.measure_payloads(tiny, repeats=1, jobs=1)
        par = perf.measure_payloads(tiny, repeats=1, jobs=2)
        assert (json.dumps(perf._bench_sim_doc(par), sort_keys=True)
                == json.dumps(perf._bench_sim_doc(seq), sort_keys=True))
        # snapshots built from farmed payloads validate and round-trip
        doc = perf.snapshot_from_payloads(par, "fastpath", repeats=1)
        perf.load_snapshot(json.loads(json.dumps(doc)))
        assert doc["workloads"][0]["speedup_sim"] > 0

    def test_version_specs_identical_across_jobs(self):
        from repro.apps import water
        from repro.bench.figures import WATER_CFG
        from repro.bench.harness import VersionSpec, run_specs

        kw = dict(n=24, iterations=2, work_scale=10.0)
        specs = [
            VersionSpec("opt", water, "predictive", True,
                        WATER_CFG.with_(block_size=32), kw),
            VersionSpec("unopt", water, "stache", False,
                        WATER_CFG.with_(block_size=64), kw),
        ]
        seq = run_specs(specs)
        par = run_specs(specs, jobs=2)
        assert [v.stats.to_dict() for v in par] \
            == [v.stats.to_dict() for v in seq]
        assert [v.spec.label for v in par] == ["opt", "unopt"]
