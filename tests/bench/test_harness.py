"""Tests for the benchmark harness plumbing (small, fast configurations)."""

import pytest

from repro.apps import water
from repro.bench.harness import FigureResult, VersionSpec, run_version
from repro.bench.figures import TABLE1_ROWS, table1
from repro.util import MachineConfig

TINY = dict(n=16, iterations=2)
CFG = MachineConfig(n_nodes=4, page_size=512)


def tiny_spec(label="v", protocol="stache", optimized=False, variant="cstar"):
    return VersionSpec(label, water, protocol, optimized, CFG, TINY, variant)


class TestRunVersion:
    def test_produces_stats(self):
        result = run_version(tiny_spec())
        assert result.wall > 0
        b = result.breakdown()
        assert set(b) == {"Remote data wait", "Predictive protocol",
                          "Compute+Synch"}
        assert sum(b.values()) == pytest.approx(result.wall)

    def test_variant_forwarded(self):
        result = run_version(tiny_spec(variant="splash"))
        assert result.wall > 0

    def test_fresh_machine_per_run(self):
        r1 = run_version(tiny_spec())
        r2 = run_version(tiny_spec())
        assert r1.wall == r2.wall  # deterministic, independent machines


class TestFigureResult:
    def make(self):
        return FigureResult(
            "Figure X", "test",
            [run_version(tiny_spec("a")),
             run_version(tiny_spec("b", "predictive", True))],
        )

    def test_result_lookup(self):
        fig = self.make()
        assert fig.result("a").spec.label == "a"
        with pytest.raises(KeyError):
            fig.result("zzz")

    def test_relative_to_fastest(self):
        fig = self.make()
        rels = [fig.relative("a"), fig.relative("b")]
        assert min(rels) == 1.0
        assert all(r >= 1.0 for r in rels)

    def test_render_contains_all_versions(self):
        fig = self.make()
        fig.notes.append("a note")
        text = fig.render()
        assert "Figure X" in text
        assert "a note" in text
        assert "hit rate" in text
        for label in ("a", "b"):
            assert label in text


class TestTable1:
    def test_three_applications(self):
        assert len(TABLE1_ROWS) == 3
        assert [r[0] for r in TABLE1_ROWS] == ["Adaptive", "Barnes", "Water"]

    def test_paper_data_sets_quoted(self):
        text = table1()
        assert "128x128 mesh, 100 iterations" in text
        assert "16384 bodies, 3 iterations" in text
        assert "512 molecules, 20 iterations" in text


class TestScaleStability:
    def test_water_ordering_stable_across_scales(self):
        """The opt < unopt ordering must not be a size artifact."""
        for n in (16, 32):
            unopt = run_version(VersionSpec(
                "u", water, "stache", False, CFG,
                dict(n=n, iterations=3, work_scale=4.0)))
            opt = run_version(VersionSpec(
                "o", water, "predictive", True, CFG,
                dict(n=n, iterations=3, work_scale=4.0)))
            assert opt.wall < unopt.wall, f"ordering flipped at n={n}"


class TestHarnessMetrics:
    """Benchmark results speak the repro.obs metrics schema (one home for
    figure, ablation, and sweep numbers)."""

    def test_version_metrics_labelled(self):
        result = run_version(tiny_spec("a", "predictive", True))
        reg = result.metrics()
        labels = dict(version="a", protocol="predictive", optimized=True,
                      block_size=CFG.block_size)
        assert reg.value("run.wall_cycles", **labels) == result.wall
        assert reg.value("run.phases", **labels) == len(result.stats.phases)

    def test_figure_metrics_merge_all_versions(self):
        fig = FigureResult(
            "Figure X", "test",
            [run_version(tiny_spec("a")),
             run_version(tiny_spec("b", "predictive", True))],
        )
        reg = fig.metrics()
        walls = reg.series("run.wall_cycles")
        assert len(walls) == 2
        assert all(lab["figure"] == "Figure X" for lab, _ in walls)
        assert {lab["version"] for lab, _ in walls} == {"a", "b"}
        # registries stay mergeable across figures and serialize cleanly
        from repro.obs import MetricsRegistry

        roundtrip = MetricsRegistry.from_dict(reg.to_dict())
        assert roundtrip.to_dict() == reg.to_dict()

    def test_traced_benchmark_run(self):
        from repro.obs import EventTrace

        tracer = EventTrace()
        result = run_version(tiny_spec("a", "predictive", True), tracer=tracer)
        assert len(tracer) > 0
        untraced = run_version(tiny_spec("a", "predictive", True))
        assert result.wall == untraced.wall  # tracing never perturbs the run
