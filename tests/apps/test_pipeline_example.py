"""The migratory pipeline example's claims, asserted quantitatively."""


def test_unrolled_sites_beat_rolled_site():
    import importlib.util
    import pathlib
    import sys

    path = pathlib.Path(__file__).parent.parent.parent / "examples/pipeline_migratory.py"
    spec = importlib.util.spec_from_file_location("pipeline_migratory", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)

    from repro.core import make_machine
    from repro.util import MachineConfig

    results = {}
    for unrolled in (False, True):
        prog = mod.build(unrolled)
        m = make_machine(
            MachineConfig(n_nodes=mod.STAGES, page_size=512), "predictive"
        )
        env = prog.run(m, optimized=True)
        stats = env.finish()
        results[unrolled] = stats

    # per-site schedules predict the stable writer: far fewer misses and a
    # much faster run than the single rotating site
    assert results[True].misses < 0.4 * results[False].misses
    assert results[True].wall_time < 0.7 * results[False].wall_time
