"""Tests for the Adaptive application: values, refinement, incremental schedules."""

import numpy as np
import pytest

from repro.apps import adaptive
from repro.core import make_machine
from repro.core.schedule import EntryKind
from repro.util import MachineConfig

CFG = MachineConfig(n_nodes=4, page_size=512)
SMALL = dict(size=12, iterations=6, threshold=0.05)


def run(protocol="stache", optimized=False, cfg=CFG, **kw):
    params = {**SMALL, **kw}
    prog = adaptive.build(**params)
    m = make_machine(cfg, protocol)
    env = prog.run(m, optimized=optimized)
    return env, m


class TestValues:
    def test_matches_reference(self):
        env, _ = run()
        ref_mesh, ref_level, ref_tree = adaptive.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("mesh").data, ref_mesh)
        np.testing.assert_array_equal(env.agg("level").data, ref_level)
        np.testing.assert_array_equal(env.agg("tree").data, ref_tree)

    def test_optimized_values_identical(self):
        env, _ = run(protocol="predictive", optimized=True)
        ref_mesh, ref_level, ref_tree = adaptive.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("mesh").data, ref_mesh)
        np.testing.assert_array_equal(env.agg("tree").data, ref_tree)

    def test_refinement_happens_near_charged_wall(self):
        env, _ = run()
        level = env.agg("level").data
        assert level.max() >= 1
        # refined cells concentrate in the left (charged) half
        left = level[:, : SMALL["size"] // 2].sum()
        right = level[:, SMALL["size"] // 2 :].sum()
        assert left > right

    def test_potential_diffuses_from_wall(self):
        env, _ = run()
        mesh = env.agg("mesh").data
        assert mesh[5, 1] > mesh[5, 5] > mesh[5, 10]

    def test_boundary_held_fixed(self):
        env, _ = run()
        mesh = env.agg("mesh").data
        assert (mesh[:, 0] == 1.0).all()
        assert (mesh[-1, 1:] == 0.0).all()


class TestKernels:
    def test_unrefined_cell_has_no_tree_updates(self):
        read0 = lambda a, b: 0.0
        level0 = lambda a, b: 0
        _, updates, _ = adaptive.cell_update(1, 1, 8, read0, level0, lambda c, k: 0.0)
        assert updates == {}

    def test_level1_cell_updates_four_quadrants(self):
        _, updates, _ = adaptive.cell_update(
            1, 1, 8, lambda a, b: 1.0, lambda a, b: 1, lambda c, k: 0.0
        )
        assert set(updates) == {0, 1, 2, 3}

    def test_level2_cell_updates_all_twenty(self):
        _, updates, _ = adaptive.cell_update(
            1, 1, 8, lambda a, b: 1.0, lambda a, b: 2, lambda c, k: 0.0
        )
        assert len(updates) == 20

    def test_refine_decision_thresholds(self):
        steep = lambda a, b: 1.0 if b == 0 else 0.0
        flat = lambda a, b: 0.5
        lvl0 = lambda a, b: 0
        assert adaptive.refine_decision(1, 1, steep, lvl0, 0.1) == 1
        assert adaptive.refine_decision(1, 1, flat, lvl0, 0.1) is None

    def test_refine_capped_at_max_level(self):
        steep = lambda a, b: 1.0 if b == 0 else 0.0
        lvlmax = lambda a, b: adaptive.MAX_LEVEL
        assert adaptive.refine_decision(1, 1, steep, lvlmax, 0.01) is None


class TestIncrementalSchedules:
    def test_schedules_grow_with_refinement(self):
        _, m = run(protocol="predictive", optimized=True)
        growth = [
            s.additions_per_instance for s in m.protocol.schedules.values()
        ]
        # at least one directive's schedule grew after its second instance
        assert any(sum(g[2:]) > 0 for g in growth)

    def test_three_directives_placed(self):
        prog = adaptive.build(**SMALL)
        placement = prog.compile()
        assert len(placement.groups) == 3  # red, black, refine

    def test_no_conflicts_with_padded_cells(self):
        _, m = run(protocol="predictive", optimized=True)
        for s in m.protocol.schedules.values():
            assert s.conflict_blocks() == []


class TestPaperShape:
    def test_optimized_faster(self):
        cfg = MachineConfig(n_nodes=8, page_size=512)
        _, m_unopt = run(cfg=cfg, size=16, iterations=8)
        _, m_opt = run(cfg=cfg, size=16, iterations=8,
                       protocol="predictive", optimized=True)
        assert m_opt.clock < m_unopt.clock

    def test_synch_time_also_reduced(self):
        """The paper's Adaptive observation: pre-sending reduces not only
        wait time but, via better balance, synchronization time too."""
        from repro.sim import TimeCategory

        cfg = MachineConfig(n_nodes=8, page_size=512)
        _, m_unopt = run(cfg=cfg, size=16, iterations=8)
        _, m_opt = run(cfg=cfg, size=16, iterations=8,
                       protocol="predictive", optimized=True)
        assert (
            m_opt.stats.mean(TimeCategory.SYNCH)
            < m_unopt.stats.mean(TimeCategory.SYNCH)
        )

    def test_conservation(self):
        _, m = run(protocol="predictive", optimized=True)
        m.stats.wall_time = m.clock
        m.stats.check_conservation()
