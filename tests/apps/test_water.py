"""Tests for the Water application: values, pattern, and paper-shape timing."""

import numpy as np
import pytest

from repro.apps import water
from repro.core import make_machine
from repro.util import MachineConfig

CFG = MachineConfig(n_nodes=4, page_size=512)
SMALL = dict(n=24, iterations=3)


def run(variant="cstar", protocol="stache", optimized=False, cfg=CFG, **kw):
    params = {**SMALL, **kw}
    prog = water.build(variant=variant, **params)
    m = make_machine(cfg, protocol)
    env = prog.run(m, optimized=optimized)
    return env, env.finish()


class TestValues:
    def test_matches_sequential_reference(self):
        env, _ = run()
        ref_pos, ref_vel = water.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("pos").data[:, :3], ref_pos)
        np.testing.assert_array_equal(env.agg("vel").data[:, :3], ref_vel)

    def test_optimized_values_identical(self):
        env, _ = run(protocol="predictive", optimized=True)
        ref_pos, _ = water.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("pos").data[:, :3], ref_pos)

    def test_splash_values_identical(self):
        env, _ = run(variant="splash")
        ref_pos, _ = water.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("pos").data[:, :3], ref_pos)

    def test_molecules_actually_move(self):
        env, _ = run()
        assert np.abs(env.agg("vel").data).max() > 0

    def test_forces_are_finite(self):
        env, _ = run()
        assert np.isfinite(env.agg("force").data).all()


class TestPattern:
    def test_two_directives_placed(self):
        prog = water.build(**SMALL)
        placement = prog.compile()
        assert len(placement.groups) == 2  # interactions + update

    def test_update_needs_schedule_by_rule1(self):
        prog = water.build(**SMALL)
        placement = prog.compile()
        from repro.cstar.flow import iter_calls

        update_calls = [c for c in iter_calls(prog.main) if c.function == "update"]
        assert update_calls and all(
            placement.needs_schedule[c.site_id] for c in update_calls
        )

    def test_static_pattern_schedule_stops_growing(self):
        """Water's pattern is static: after iteration 1 no new blocks."""
        prog = water.build(n=24, iterations=4)
        m = make_machine(CFG, "predictive")
        prog.run(m, optimized=True)
        for sched in m.protocol.schedules.values():
            assert sum(sched.additions_per_instance[2:]) == 0

    def test_steady_state_no_new_misses(self):
        prog = water.build(n=24, iterations=6)
        m = make_machine(CFG, "predictive")
        prog.run(m, optimized=True)
        # per-phase miss counts must drop to ~zero after warmup: compare
        # total misses against a 2-iteration run
        total_6 = m.stats.misses
        prog2 = water.build(n=24, iterations=2)
        m2 = make_machine(CFG, "predictive")
        prog2.run(m2, optimized=True)
        total_2 = m2.stats.misses
        assert total_6 <= total_2 * 1.25  # little growth past warmup


class TestPaperShape:
    def test_optimized_faster_than_unoptimized(self):
        _, s_unopt = run()
        _, s_opt = run(protocol="predictive", optimized=True)
        assert s_opt.wall_time < s_unopt.wall_time

    def test_optimized_beats_splash(self):
        _, s_opt = run(protocol="predictive", optimized=True)
        _, s_splash = run(variant="splash")
        assert s_opt.wall_time < s_splash.wall_time

    def test_remote_wait_reduced(self):
        _, s_unopt = run()
        _, s_opt = run(protocol="predictive", optimized=True)
        assert (
            s_opt.figure_breakdown()["Remote data wait"]
            < 0.7 * s_unopt.figure_breakdown()["Remote data wait"]
        )

    def test_conservation(self):
        for kwargs in (
            dict(),
            dict(protocol="predictive", optimized=True),
            dict(variant="splash"),
        ):
            _, stats = run(**kwargs)
            stats.check_conservation()
