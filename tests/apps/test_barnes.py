"""Tests for Barnes: octree, force kernel, phases, variants, paper shape."""

import numpy as np
import pytest

from repro.apps import barnes
from repro.apps.barnes import Octree, TreeLayout, traverse_force
from repro.core import make_machine
from repro.util import MachineConfig

CFG = MachineConfig(n_nodes=4, page_size=1024)
SMALL = dict(n=48, iterations=2)


def run(variant="cstar", protocol="stache", optimized=False, cfg=CFG, **kw):
    params = {**SMALL, **kw}
    prog = barnes.build(variant=variant, **params)
    m = make_machine(cfg, protocol)
    env = prog.run(m, optimized=optimized)
    return env, m


class TestOctree:
    def positions(self, n=32, seed=3):
        rng = np.random.default_rng(seed)
        return rng.uniform(-1, 1, (n, 3))

    def test_every_body_in_exactly_one_leaf(self):
        pos = self.positions()
        tree = Octree(pos)
        leaves = [nd.body for nd in tree.nodes if nd.body != -1]
        assert sorted(leaves) == list(range(len(pos)))

    def test_bodies_inside_their_leaf_cube(self):
        pos = self.positions()
        tree = Octree(pos)
        for nd in tree.nodes:
            if nd.body == -1:
                continue
            assert (np.abs(pos[nd.body] - nd.center) <= nd.half * 1.0001).all()

    def test_children_are_proper_octants(self):
        tree = Octree(self.positions())
        for nd in tree.nodes:
            for o, c in enumerate(nd.children):
                if c == -1:
                    continue
                child = tree.nodes[c]
                assert child.half == pytest.approx(nd.half / 2)
                assert child.depth == nd.depth + 1

    def test_dfs_order_contiguous_subtrees(self):
        tree = Octree(self.positions())
        layout = TreeLayout.build(self.positions())
        # a parent's row precedes all rows in its subtree
        for node_id, nd in enumerate(layout.octree.nodes):
            for c in nd.children:
                if c != -1:
                    assert layout.row_of[c] > layout.row_of[node_id]

    def test_depth_levels_cover_internal_nodes(self):
        tree = Octree(self.positions())
        levels = tree.depth_levels()
        internal = sum(1 for nd in tree.nodes if nd.body == -1)
        assert sum(len(l) for l in levels) == internal

    def test_mass_conservation_in_reference_tree(self):
        """After the upward pass the root mass is the total mass."""
        # run reference one iteration and reuse its tree construction
        pos, vel = barnes.reference(n=24, iterations=1)
        assert np.isfinite(pos).all()


class TestForceKernel:
    def test_bh_approximates_direct_sum(self):
        n = 48
        acc_direct = barnes.direct_reference(n=n)
        # reconstruct BH acceleration at iteration 0 via the reference with
        # dt=0: pos after one step with dt -> vel = acc*dt
        dt = 1e-6
        pos0, vel1 = barnes.reference(n=n, iterations=1, dt=dt, vel_scale=0.0)
        acc_bh = vel1 / dt
        denom = np.linalg.norm(acc_direct, axis=1) + 1e-12
        rel = np.linalg.norm(acc_bh - acc_direct, axis=1) / denom
        assert np.median(rel) < 0.05  # theta=0.6 accuracy

    def test_theta_zero_matches_direct_exactly(self):
        n = 24
        dt = 1e-6
        acc_direct = barnes.direct_reference(n=n)
        pos0, vel1 = barnes.reference(n=n, iterations=1, dt=dt, theta=0.0,
                                      vel_scale=0.0)
        acc_bh = vel1 / dt
        np.testing.assert_allclose(acc_bh, acc_direct, rtol=1e-6)

    def test_self_interaction_excluded(self):
        # one distant body pair: force magnitudes equal and opposite
        n = 16
        dt = 1e-6
        _, vel1 = barnes.reference(n=n, iterations=1, dt=dt, vel_scale=0.0)
        assert np.isfinite(vel1).all()


class TestValues:
    @pytest.mark.parametrize(
        "variant,protocol,optimized",
        [
            ("cstar", "stache", False),
            ("cstar", "predictive", True),
            ("spmd", "write-update", False),
        ],
    )
    def test_matches_reference(self, variant, protocol, optimized):
        env, _ = run(variant=variant, protocol=protocol, optimized=optimized)
        ref_pos, ref_vel = barnes.reference(**SMALL)
        np.testing.assert_array_equal(env.agg("bodies").data[:, 0:3], ref_pos)
        np.testing.assert_array_equal(env.agg("bodies").data[:, 3:6], ref_vel)


class TestPhases:
    def test_four_directives_placed(self):
        """The paper's Figure 4: four phases in the main loop."""
        prog = barnes.build(**SMALL)
        placement = prog.compile()
        assert len(placement.groups) == 4

    def test_center_of_mass_hoisted(self):
        prog = barnes.build(**SMALL)
        placement = prog.compile()
        hoisted = [g for g in placement.groups if g.hoisted]
        assert len(hoisted) == 1
        from repro.cstar.flow import iter_calls

        calls = {c.site_id: c.function for c in iter_calls(prog.main)}
        assert all(
            calls[s] == "center_of_mass" for s in hoisted[0].site_ids
        )

    def test_update_covered_by_rule1(self):
        prog = barnes.build(**SMALL)
        placement = prog.compile()
        from repro.cstar.flow import iter_calls

        update = [c for c in iter_calls(prog.main) if c.function == "update"][0]
        assert placement.needs_schedule[update.site_id]
        assert update.summary.is_home_only()


class TestPaperShape:
    def test_predictive_cuts_remote_wait_at_32B(self):
        _, m_unopt = run(cfg=CFG.with_(block_size=32))
        _, m_opt = run(cfg=CFG.with_(block_size=32), protocol="predictive",
                       optimized=True)
        m_unopt.stats.wall_time = m_unopt.clock
        m_opt.stats.wall_time = m_opt.clock
        w_unopt = m_unopt.stats.figure_breakdown()["Remote data wait"]
        w_opt = m_opt.stats.figure_breakdown()["Remote data wait"]
        assert w_opt < 0.75 * w_unopt

    def test_large_blocks_exploit_spatial_locality(self):
        """Barnes shows good spatial locality: the unoptimized version gains
        a lot from 1024-byte blocks (paper §5.2)."""
        _, m32 = run(cfg=CFG.with_(block_size=32))
        _, m1024 = run(cfg=CFG.with_(block_size=1024))
        assert m1024.clock < 0.6 * m32.clock

    def test_conservation_all_variants(self):
        for variant, protocol, optimized in [
            ("cstar", "stache", False),
            ("cstar", "predictive", True),
            ("spmd", "write-update", False),
        ]:
            _, m = run(variant=variant, protocol=protocol, optimized=optimized)
            m.stats.wall_time = m.clock
            m.stats.check_conservation()
