"""Unit tests for the write-update protocol (the SPMD baseline's custom
protocol)."""

import pytest

from repro.protocols.writeupdate import UPDATE_SHARED
from repro.tempest.machine import PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util import ProtocolError

from tests.helpers import run_one_phase, small_machine


class TestRegistration:
    def test_first_read_registers_consumer(self):
        m, b = small_machine("write-update", n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        entry = m.protocol.directory.entry(b)
        assert entry.state == UPDATE_SHARED
        assert entry.sharers == {1}
        assert m.nodes[1].tags.get(b) is AccessTag.READ_ONLY

    def test_home_keeps_writable_tag(self):
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {1: [("r", b)]})
        assert m.nodes[0].tags.get(b) is AccessTag.READ_WRITE

    def test_multiple_consumers(self):
        m, b = small_machine("write-update", n_nodes=4)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)], 3: [("r", b)]})
        assert m.protocol.directory.entry(b).sharers == {1, 2, 3}


class TestUpdatePush:
    def test_producer_write_does_not_invalidate(self):
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {1: [("r", b)]})
        run_one_phase(m, {0: [("w", b)]})
        # consumer still has a readable copy (updated, not invalidated)
        assert m.nodes[1].tags.get(b) is AccessTag.READ_ONLY
        run_one_phase(m, {1: [("r", b)]})
        assert m.nodes[1].stats.read_misses == 1  # only the first read missed

    def test_updates_counted(self):
        m, b = small_machine("write-update", n_nodes=3)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
        run_one_phase(m, {0: [("w", b)]})
        assert m.protocol.updates_pushed == 2  # one copy to each consumer
        assert m.protocol.update_messages == 2

    def test_no_push_without_consumers(self):
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {0: [("w", b)]})
        assert m.protocol.updates_pushed == 0

    def test_push_extends_barrier(self):
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {1: [("r", b)]})
        t0 = m.clock
        run_one_phase(m, {0: [("w", b)]})
        dt_with_push = m.clock - t0
        # same write with no consumers registered is cheaper
        m2, b2 = small_machine("write-update", n_nodes=2)
        t0 = m2.clock
        run_one_phase(m2, {0: [("w", b2)]})
        assert dt_with_push > m2.clock - t0

    def test_per_block_messages_by_default(self):
        """Coalescing bulk messages is the predictive protocol's trick;
        the baseline sends one message per block."""
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {1: [("r", b), ("r", b + 1), ("r", b + 2)]})
        before = m.protocol.update_messages
        run_one_phase(m, {0: [("w", b), ("w", b + 1), ("w", b + 2)]})
        assert m.protocol.update_messages - before == 3

    def test_conservation(self):
        m, b = small_machine("write-update", n_nodes=3)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b + 1)]})
        run_one_phase(m, {0: [("w", b), ("w", b + 1)]})
        m.finish().check_conservation()


class TestConstraints:
    def test_remote_write_rejected(self):
        m, b = small_machine("write-update", n_nodes=2)
        with pytest.raises(ProtocolError) as ei:
            run_one_phase(m, {1: [("w", b)]})
        assert "producer-owned" in str(ei.value)

    def test_home_read_never_faults(self):
        m, b = small_machine("write-update", n_nodes=2)
        run_one_phase(m, {0: [("r", b), ("w", b)]})
        assert m.stats.misses == 0
