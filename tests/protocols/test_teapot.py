"""Tests for the teapot state-machine framework."""

import pytest

from repro.protocols import ProtocolStateMachine, transition
from repro.util import ProtocolError


class Entry:
    def __init__(self, state="A"):
        self.state = state

    def __repr__(self):
        return f"<Entry {self.state}>"


class Simple(ProtocolStateMachine):
    def __init__(self):
        self.log = []

    @transition("A", "go")
    def a_go(self, entry):
        self.log.append("a_go")
        entry.state = "B"

    @transition(("A", "B"), "poke")
    def any_poke(self, entry):
        self.log.append("poke")

    @transition("B", "go")
    def b_go(self, entry):
        self.log.append("b_go")
        entry.state = "A"


class Derived(Simple):
    @transition("A", "go")  # override
    def a_go2(self, entry):
        self.log.append("a_go2")

    @transition("B", "new")
    def b_new(self, entry):
        self.log.append("b_new")


class TestDispatch:
    def test_dispatches_by_state_and_event(self):
        sm = Simple()
        e = Entry("A")
        sm.dispatch(e, "go")
        assert sm.log == ["a_go"]
        assert e.state == "B"
        sm.dispatch(e, "go")
        assert e.state == "A"

    def test_multi_state_declaration(self):
        sm = Simple()
        sm.dispatch(Entry("A"), "poke")
        sm.dispatch(Entry("B"), "poke")
        assert sm.log == ["poke", "poke"]

    def test_missing_transition_raises(self):
        sm = Simple()
        with pytest.raises(ProtocolError) as ei:
            sm.dispatch(Entry("B"), "nonsense")
        assert "no transition" in str(ei.value)

    def test_dispatch_returns_handler_result(self):
        class R(ProtocolStateMachine):
            @transition("A", "q")
            def q(self, entry):
                return 42

        assert R().dispatch(Entry("A"), "q") == 42

    def test_extra_args_forwarded(self):
        class Args(ProtocolStateMachine):
            @transition("A", "msg")
            def msg(self, entry, payload, t):
                return (payload, t)

        assert Args().dispatch(Entry("A"), "msg", "data", t=5.0) == ("data", 5.0)


class TestInheritance:
    def test_subclass_inherits_parent_table(self):
        sm = Derived()
        sm.dispatch(Entry("B"), "go")
        assert sm.log == ["b_go"]

    def test_subclass_overrides_transition(self):
        sm = Derived()
        e = Entry("A")
        sm.dispatch(e, "go")
        assert sm.log == ["a_go2"]
        assert e.state == "A"  # override does not change state

    def test_subclass_adds_transition(self):
        sm = Derived()
        sm.dispatch(Entry("B"), "new")
        assert sm.log == ["b_new"]

    def test_parent_table_unpolluted(self):
        assert not Simple().has_transition("B", "new")
        assert Derived().has_transition("B", "new")

    def test_transitions_introspection(self):
        table = Simple.transitions()
        assert table[("A", "go")] == "a_go"
        assert table[("B", "go")] == "b_go"
        assert ("A", "poke") in table
