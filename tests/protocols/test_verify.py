"""Tests for the static protocol audit — and the shipped protocols' audits."""

import pytest

from repro.core.predictive import PredictiveProtocol
from repro.protocols.directory import DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.stache import StacheProtocol
from repro.protocols.teapot import ProtocolStateMachine, transition
from repro.protocols.verify import STACHE_HOME_SPEC, audit_protocol
from repro.protocols.writeupdate import UPDATE_SHARED, WriteUpdateProtocol


class TestShippedProtocols:
    def test_stache_is_hole_free(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        assert result.ok, result.report()

    def test_stache_has_no_dead_transitions(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        assert result.dead == [], result.report()

    def test_predictive_inherits_full_coverage(self):
        result = audit_protocol(PredictiveProtocol, STACHE_HOME_SPEC)
        assert result.ok, result.report()

    def test_write_update_covers_its_states(self):
        spec = {
            DirState.IDLE: {MK.GET_RO, MK.GET_RW},
            UPDATE_SHARED: {MK.GET_RO, MK.GET_RW},
        }
        result = audit_protocol(WriteUpdateProtocol, spec)
        assert result.ok, result.report()

    def test_report_renders(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        text = result.report()
        assert "no holes" in text
        assert "StacheProtocol" in text


class TestAuditMechanics:
    def make_incomplete(self):
        class Incomplete(ProtocolStateMachine):
            @transition("A", "x")
            def ax(self, entry):
                pass

            @transition("B", "zombie")
            def bz(self, entry):
                pass

        return Incomplete

    def test_detects_holes(self):
        result = audit_protocol(self.make_incomplete(), {"A": {"x", "y"}})
        assert ("A", "y") in result.holes
        assert not result.ok

    def test_detects_dead_transitions(self):
        result = audit_protocol(self.make_incomplete(),
                                {"A": {"x"}, "B": {"other"}})
        assert ("B", "zombie") in result.dead

    def test_extra_states_merge(self):
        result = audit_protocol(
            self.make_incomplete(), {"A": {"x"}},
            extra_states={"B": {"zombie"}},
        )
        assert result.ok
        assert ("B", "zombie") in result.covered

    def test_holes_appear_in_report(self):
        result = audit_protocol(self.make_incomplete(), {"A": {"x", "y"}})
        assert "HOLES" in result.report()


class TestUnknownStates:
    """Transitions for states absent from the spec must be reported, not
    silently ignored (they can never fire against a conforming directory)."""

    def make_with_unknown_state(self):
        class Renamed(ProtocolStateMachine):
            @transition("A", "x")
            def ax(self, entry):
                pass

            # handler for a state the spec no longer mentions (e.g. the
            # state was renamed and this declaration was left behind)
            @transition("GHOST", "x")
            def ghost(self, entry):
                pass

        return Renamed

    def test_unknown_state_reported(self):
        result = audit_protocol(self.make_with_unknown_state(), {"A": {"x"}})
        assert ("GHOST", "x") in result.unknown_states
        assert ("GHOST", "x") not in result.dead
        assert ("GHOST", "x") not in result.covered

    def test_unknown_state_not_a_hole(self):
        result = audit_protocol(self.make_with_unknown_state(), {"A": {"x"}})
        assert result.ok  # holes gate runtime safety; unknowns gate cleanliness
        assert not result.clean

    def test_unknown_state_in_report(self):
        result = audit_protocol(self.make_with_unknown_state(), {"A": {"x"}})
        text = result.report()
        assert "unknown states" in text
        assert "GHOST" in text

    def test_extra_states_rescue_unknowns(self):
        result = audit_protocol(
            self.make_with_unknown_state(), {"A": {"x"}},
            extra_states={"GHOST": {"x"}},
        )
        assert result.unknown_states == []
        assert ("GHOST", "x") in result.covered

    def test_clean_on_exact_match(self):
        result = audit_protocol(self.make_with_unknown_state(),
                                {"A": {"x"}, "GHOST": {"x"}})
        assert result.clean

    def test_shipped_protocols_have_no_unknown_states(self):
        for cls, spec in [
            (StacheProtocol, STACHE_HOME_SPEC),
            (PredictiveProtocol, STACHE_HOME_SPEC),
        ]:
            result = audit_protocol(cls, spec)
            assert result.unknown_states == [], result.report()
