"""Tests for the static protocol audit — and the shipped protocols' audits."""

import pytest

from repro.core.predictive import PredictiveProtocol
from repro.protocols.directory import DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.stache import StacheProtocol
from repro.protocols.teapot import ProtocolStateMachine, transition
from repro.protocols.verify import STACHE_HOME_SPEC, audit_protocol
from repro.protocols.writeupdate import UPDATE_SHARED, WriteUpdateProtocol


class TestShippedProtocols:
    def test_stache_is_hole_free(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        assert result.ok, result.report()

    def test_stache_has_no_dead_transitions(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        assert result.dead == [], result.report()

    def test_predictive_inherits_full_coverage(self):
        result = audit_protocol(PredictiveProtocol, STACHE_HOME_SPEC)
        assert result.ok, result.report()

    def test_write_update_covers_its_states(self):
        spec = {
            DirState.IDLE: {MK.GET_RO, MK.GET_RW},
            UPDATE_SHARED: {MK.GET_RO, MK.GET_RW},
        }
        result = audit_protocol(WriteUpdateProtocol, spec)
        assert result.ok, result.report()

    def test_report_renders(self):
        result = audit_protocol(StacheProtocol, STACHE_HOME_SPEC)
        text = result.report()
        assert "no holes" in text
        assert "StacheProtocol" in text


class TestAuditMechanics:
    def make_incomplete(self):
        class Incomplete(ProtocolStateMachine):
            @transition("A", "x")
            def ax(self, entry):
                pass

            @transition("B", "zombie")
            def bz(self, entry):
                pass

        return Incomplete

    def test_detects_holes(self):
        result = audit_protocol(self.make_incomplete(), {"A": {"x", "y"}})
        assert ("A", "y") in result.holes
        assert not result.ok

    def test_detects_dead_transitions(self):
        result = audit_protocol(self.make_incomplete(),
                                {"A": {"x"}, "B": {"other"}})
        assert ("B", "zombie") in result.dead

    def test_extra_states_merge(self):
        result = audit_protocol(
            self.make_incomplete(), {"A": {"x"}},
            extra_states={"B": {"zombie"}},
        )
        assert result.ok
        assert ("B", "zombie") in result.covered

    def test_holes_appear_in_report(self):
        result = audit_protocol(self.make_incomplete(), {"A": {"x", "y"}})
        assert "HOLES" in result.report()
