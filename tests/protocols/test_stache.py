"""End-to-end tests of the Stache write-invalidate protocol through traces.

Each scenario replays a short hand-written trace on a small machine and
asserts the resulting tags, directory state, and message behaviour.
"""

import pytest

from repro.protocols.directory import DirState
from repro.tempest.tags import AccessTag
from repro.util import ProtocolError

from tests.helpers import run_one_phase, small_machine


def dir_entry(m, block):
    return m.protocol.directory.entry(block)


class TestReadPath:
    def test_remote_read_creates_sharer(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.SHARED
        assert e.sharers == {1}
        assert m.nodes[1].tags.get(b) is AccessTag.READ_ONLY
        assert m.nodes[0].tags.get(b) is AccessTag.READ_ONLY  # home downgraded

    def test_multiple_readers_accumulate(self):
        m, b = small_machine(n_nodes=4)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)], 3: [("r", b)]})
        assert dir_entry(m, b).sharers == {1, 2, 3}

    def test_read_of_exclusive_block_recalls_writer(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("w", b)]})                  # node 1 takes RW
        assert dir_entry(m, b).state == DirState.EXCLUSIVE
        run_one_phase(m, {2: [("r", b)]})                  # node 2 reads
        e = dir_entry(m, b)
        assert e.state == DirState.SHARED
        assert e.sharers == {2}
        # paper: the producer's copy is invalidated, not downgraded
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID
        assert m.nodes[2].tags.get(b) is AccessTag.READ_ONLY

    def test_home_read_of_exclusive_block(self):
        m, b = small_machine(n_nodes=2)
        run_one_phase(m, {1: [("w", b)]})
        run_one_phase(m, {0: [("r", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.IDLE
        assert m.nodes[0].tags.get(b) is AccessTag.READ_WRITE
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID


class TestWritePath:
    def test_remote_write_takes_exclusive(self):
        m, b = small_machine(n_nodes=2)
        run_one_phase(m, {1: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.EXCLUSIVE
        assert e.owner == 1
        assert m.nodes[1].tags.get(b) is AccessTag.READ_WRITE
        assert m.nodes[0].tags.get(b) is AccessTag.INVALID  # home gave it up

    def test_write_invalidates_all_readers(self):
        m, b = small_machine(n_nodes=4)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
        run_one_phase(m, {3: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.EXCLUSIVE and e.owner == 3
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID
        assert m.nodes[2].tags.get(b) is AccessTag.INVALID

    def test_upgrade_by_sole_sharer(self):
        m, b = small_machine(n_nodes=2)
        run_one_phase(m, {1: [("r", b)]})
        run_one_phase(m, {1: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.EXCLUSIVE and e.owner == 1

    def test_home_upgrade_invalidates_readers(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
        run_one_phase(m, {0: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.IDLE
        assert m.nodes[0].tags.get(b) is AccessTag.READ_WRITE
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID

    def test_write_steals_from_other_writer(self):
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("w", b)]})
        run_one_phase(m, {2: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.EXCLUSIVE and e.owner == 2
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID


class TestContention:
    def test_concurrent_read_and_write_same_block(self):
        """Race on one block within a phase must serialize via the home's
        pending queue and still leave a consistent final state."""
        m, b = small_machine(n_nodes=4)
        run_one_phase(m, {1: [("r", b)], 2: [("w", b)], 3: [("r", b)]})
        e = dir_entry(m, b)
        e.check_invariants()
        assert e.state in (DirState.SHARED, DirState.EXCLUSIVE)
        m.finish().check_conservation()

    def test_many_writers_alternating(self):
        m, b = small_machine(n_nodes=4)
        for writer in (1, 2, 3, 1, 2):
            run_one_phase(m, {writer: [("w", b)]})
        e = dir_entry(m, b)
        assert e.state == DirState.EXCLUSIVE and e.owner == 2
        m.protocol.directory.check_all()

    def test_hot_home_serializes_handlers(self):
        """Many simultaneous requesters to one home: total time grows with
        handler occupancy, not just one round trip."""
        m, b = small_machine(n_nodes=8)
        run_one_phase(m, {i: [("r", b + i)] for i in range(1, 8)})
        # all 7 requests hit node 0's handler; the last reply cannot complete
        # before 7 serviced requests
        cfg = m.config
        min_serial = 7 * (cfg.handler_cost + cfg.directory_lookup_cost)
        assert m.clock >= min_serial

    def test_four_message_producer_consumer_cost(self):
        """Paper §3.2: producer->consumer transfer with a third-party home
        takes four message flights."""
        m, b = small_machine(n_nodes=3)
        run_one_phase(m, {1: [("w", b)]})          # producer writes
        t0 = m.clock
        run_one_phase(m, {2: [("r", b)]})          # consumer reads
        elapsed = m.clock - t0
        cfg = m.config
        assert elapsed >= 4 * cfg.msg_latency  # GET_RO, RECALL, WB, DATA


class TestProtocolInvariants:
    def test_directory_consistent_after_random_phases(self):
        m, b = small_machine(n_nodes=4)
        import random

        rng = random.Random(42)
        for _ in range(20):
            busy = {}
            for node in range(4):
                ops = []
                for _ in range(rng.randint(0, 3)):
                    ops.append((rng.choice("rw"), b + rng.randint(0, 7)))
                if ops:
                    busy[node] = ops
            run_one_phase(m, busy)
        m.protocol.directory.check_all()
        m.finish().check_conservation()

    def test_single_writer_invariant(self):
        """At every phase end: at most one RW tag per block, and RW excludes
        any RO tags on other nodes."""
        m, b = small_machine(n_nodes=4)
        import random

        rng = random.Random(7)
        blocks = [b + i for i in range(4)]
        for _ in range(15):
            busy = {
                n: [(rng.choice("rw"), rng.choice(blocks))] for n in range(4)
            }
            run_one_phase(m, busy)
            for blk in blocks:
                tags = [m.nodes[n].tags.get(blk) for n in range(4)]
                writers = sum(t is AccessTag.READ_WRITE for t in tags)
                readers = sum(t is AccessTag.READ_ONLY for t in tags)
                assert writers <= 1
                if writers:
                    assert readers == 0
