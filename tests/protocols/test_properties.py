"""Property-based protocol tests: random phase workloads must preserve the
coherence invariants under every protocol.

Hypothesis generates arbitrary barrier-separated workloads (who reads/writes
which block in which phase, under directives or not) and we assert, after
every phase:

* **single-writer**: at most one READ_WRITE tag per block, and it excludes
  READ_ONLY tags elsewhere;
* **directory-tag agreement**: the home directory's stable state matches
  the tags actually installed;
* **liveness**: no run deadlocks (run_phase raises on dropped resumes);
* **conservation**: per-node time categories sum to wall time.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import make_machine
from repro.protocols.directory import DirState
from repro.tempest.machine import PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util import MachineConfig

N_NODES = 4
N_BLOCKS = 6

# one phase: per node, a few (kind, block) accesses
phase_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_NODES - 1),   # node
        st.sampled_from("rw"),                              # kind
        st.integers(min_value=0, max_value=N_BLOCKS - 1),   # block offset
    ),
    min_size=0,
    max_size=8,
)
workload_strategy = st.lists(phase_strategy, min_size=1, max_size=6)


def build_machine(protocol: str):
    m = make_machine(MachineConfig(n_nodes=N_NODES, page_size=512), protocol)
    region = m.addr_space.allocate("data", 512, home_policy=lambda p: 0)
    first = m.addr_space.block_of(region.base)
    for b in range(first, first + N_BLOCKS):
        m.nodes[0].tags.set(b, AccessTag.READ_WRITE)
    return m, first


def run_workload(m, first, workload, directives=False):
    for i, phase in enumerate(workload):
        ops = [[] for _ in range(N_NODES)]
        for node, kind, off in phase:
            ops[node].append((kind, first + off))
        if directives:
            m.begin_group(1 + i % 2)
        m.run_phase(PhaseTrace(f"p{i}", ops))
        if directives:
            m.end_group()


def check_invariants(m, first):
    for off in range(N_BLOCKS):
        block = first + off
        tags = [m.nodes[n].tags.get(block) for n in range(N_NODES)]
        writers = sum(t is AccessTag.READ_WRITE for t in tags)
        readers = sum(t is AccessTag.READ_ONLY for t in tags)
        assert writers <= 1, f"block {block}: multiple writers"
        if writers:
            assert readers == 0, f"block {block}: writer plus readers"
        entry = m.protocol.directory.entry(block)
        entry.check_invariants()
        if entry.state == DirState.EXCLUSIVE:
            assert tags[entry.owner] is AccessTag.READ_WRITE
        elif entry.state == DirState.SHARED:
            for s in entry.sharers:
                assert tags[s] is AccessTag.READ_ONLY, (
                    f"block {block}: sharer {s} lost its copy"
                )


class TestStacheProperties:
    @given(workload_strategy)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold(self, workload):
        m, first = build_machine("stache")
        run_workload(m, first, workload)
        check_invariants(m, first)
        m.finish().check_conservation()


class TestPredictiveProperties:
    @given(workload_strategy)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_with_directives(self, workload):
        m, first = build_machine("predictive")
        run_workload(m, first, workload, directives=True)
        check_invariants(m, first)
        m.finish().check_conservation()

    @staticmethod
    def _drop_conflicts(workload):
        """Keep each phase conflict-free: one writer per block, and a block
        is either read or written within a phase (the paper's 'independent
        parallel threads' assumption — conflict blocks are explicitly not
        optimized and need not converge)."""
        cleaned = []
        for phase in workload:
            written: set[int] = set()
            touched: set[int] = set()
            out = []
            for node, kind, off in phase:
                if kind == "w":
                    if off in touched:
                        continue
                    written.add(off)
                else:
                    if off in written:
                        continue
                out.append((node, kind, off))
                touched.add(off)
            cleaned.append(out)
        return cleaned

    @given(workload_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_repeating_workload_converges(self, workload):
        """After one warm-up replay, repeating the same conflict-free
        workload must not increase the per-replay miss count (schedules
        only help).

        The cold replay is excluded from the comparison: it starts from the
        allocation state, where the home owns every block, so a home access
        that hits for free there can legitimately miss on the next replay
        once a remote writer has taken the block — and schedules learn only
        from faults (test_hits_not_recorded), so nothing can anticipate an
        access that has never faulted.  One warm-up replay surfaces every
        such access; from there on, convergence must be monotone.

        Waste-driven degradation is pinned off for this property: on
        workloads where aliased directives legitimately pre-send blocks the
        next instance invalidates, a degrade/re-learn cycle makes the miss
        series oscillate by design (covered by tests/faults/
        test_degradation.py), which is not the monotone-learning property
        under test here.
        """
        workload = self._drop_conflicts(workload)
        m, first = build_machine("predictive")
        m.protocol.degrade_patience = 10 ** 9
        run_workload(m, first, workload, directives=True)  # cold start
        warmup = m.stats.misses
        run_workload(m, first, workload, directives=True)
        first_misses = m.stats.misses - warmup
        run_workload(m, first, workload, directives=True)
        second = m.stats.misses - warmup - first_misses
        run_workload(m, first, workload, directives=True)
        third = m.stats.misses - warmup - first_misses - second
        assert third <= second <= first_misses

    @given(workload_strategy)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_values_of_hits_plus_misses(self, workload):
        """Predictive and stache replay identical traces: the access counts
        must agree even though the hit/miss split differs."""
        totals = []
        for protocol in ("stache", "predictive"):
            m, first = build_machine(protocol)
            run_workload(m, first, workload, directives=True)
            totals.append(m.stats.local_hits + m.stats.misses)
        assert totals[0] == totals[1]


class TestWriteUpdateProperties:
    # write-update requires producer-owned writes: restrict writes to node 0
    # (the home of every block), reads to anyone.
    wu_phase = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=N_NODES - 1),
            st.sampled_from("rw"),
            st.integers(min_value=0, max_value=N_BLOCKS - 1),
        ).map(lambda t: (0, "w", t[2]) if t[1] == "w" else t),
        min_size=0,
        max_size=8,
    )

    @given(st.lists(wu_phase, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_consumers_never_invalidate(self, workload):
        """Under write-update, a registered consumer keeps a readable copy
        forever (updates refresh, never invalidate)."""
        m, first = build_machine("write-update")
        had_copy: set[tuple[int, int]] = set()
        for i, phase in enumerate(workload):
            ops = [[] for _ in range(N_NODES)]
            for node, kind, off in phase:
                ops[node].append((kind, first + off))
            m.run_phase(PhaseTrace(f"p{i}", ops))
            for n in range(1, N_NODES):
                for off in range(N_BLOCKS):
                    if m.nodes[n].tags.permits(first + off, "r"):
                        had_copy.add((n, first + off))
            for n, b in had_copy:
                assert m.nodes[n].tags.permits(b, "r")
        m.finish().check_conservation()
