"""Tests for directory entries and their invariants."""

import pytest

from repro.protocols import Directory, DirEntry, DirState
from repro.util import ProtocolError


class TestDirEntry:
    def test_starts_idle(self):
        e = DirEntry(block=1, home=0)
        assert e.state == DirState.IDLE
        e.check_invariants()

    def test_idle_with_copies_is_invalid(self):
        e = DirEntry(block=1, home=0, sharers={2})
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_shared_requires_sharers(self):
        e = DirEntry(block=1, home=0, state=DirState.SHARED)
        with pytest.raises(ProtocolError):
            e.check_invariants()
        e.sharers.add(1)
        e.check_invariants()

    def test_shared_cannot_have_owner(self):
        e = DirEntry(block=1, home=0, state=DirState.SHARED, sharers={1}, owner=2)
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_home_not_its_own_sharer(self):
        e = DirEntry(block=1, home=0, state=DirState.SHARED, sharers={0})
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_exclusive_requires_remote_owner(self):
        e = DirEntry(block=1, home=0, state=DirState.EXCLUSIVE, owner=1)
        e.check_invariants()
        e.owner = None
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_exclusive_owner_not_home(self):
        e = DirEntry(block=1, home=0, state=DirState.EXCLUSIVE, owner=0)
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_busy_requires_in_service(self):
        e = DirEntry(block=1, home=0, state=DirState.BUSY_INV)
        with pytest.raises(ProtocolError):
            e.check_invariants()
        e.in_service = 3
        e.check_invariants()

    def test_unknown_state_rejected(self):
        e = DirEntry(block=1, home=0, state="BOGUS")
        with pytest.raises(ProtocolError):
            e.check_invariants()


class TestDirectory:
    def test_lazy_entry_creation(self):
        d = Directory(home_of=lambda b: b % 4)
        assert len(d) == 0
        e = d.entry(7)
        assert e.home == 3
        assert len(d) == 1
        assert d.entry(7) is e

    def test_check_all(self):
        d = Directory(home_of=lambda b: 0)
        d.entry(1)
        d.entry(2).state = DirState.SHARED  # malformed: no sharers
        with pytest.raises(ProtocolError):
            d.check_all()

    def test_known_lists_entries(self):
        d = Directory(home_of=lambda b: 0)
        d.entry(1)
        d.entry(5)
        assert sorted(e.block for e in d.known()) == [1, 5]
