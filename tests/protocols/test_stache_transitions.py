"""Transition-level unit tests of the Stache home-side FSM.

The end-to-end tests drive whole traces; these call individual handlers on
synthetic directory entries, documenting each transition's contract the way
a Teapot specification reads.
"""

import pytest

from repro.core import make_machine
from repro.protocols.directory import DirEntry, DirState
from repro.protocols.messages import MessageKind as MK
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util import MachineConfig, ProtocolError


@pytest.fixture
def setup():
    """A 4-node machine with node 0 homing one block, via the protocol."""
    m = make_machine(MachineConfig(n_nodes=4, page_size=512), "stache")
    region = m.addr_space.allocate("x", 512, home_policy=lambda p: 0)
    block = m.addr_space.block_of(region.base)
    m.nodes[0].tags.set(block, AccessTag.READ_WRITE)
    return m, m.protocol, block


class FakeProc:
    """Stands in for the requesting ReplayProcessor in unit-level tests."""

    def __init__(self):
        self.resumed_at = None

    def resume(self, t):
        self.resumed_at = t


def expect_grant(proto, node, block, kind="r"):
    """Register a synthetic outstanding fault so the granted DATA message
    has a requester to complete."""
    proc = FakeProc()
    proto.outstanding[node] = (proc, block, kind)
    return proc


def drain(m):
    m.engine.run()


class TestIdle:
    def test_get_ro_grants_and_downgrades_home(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        proc = expect_grant(proto, 1, b)
        proto.dispatch(entry, MK.GET_RO, Message(MK.GET_RO, 1, 0, block=b), 0.0)
        drain(m)
        assert entry.state == DirState.SHARED
        assert entry.sharers == {1}
        assert m.nodes[0].tags.get(b) is AccessTag.READ_ONLY
        assert m.nodes[1].tags.get(b) is AccessTag.READ_ONLY
        assert proc.resumed_at is not None

    def test_get_rw_transfers_ownership(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        expect_grant(proto, 2, b, "w")
        proto.dispatch(entry, MK.GET_RW, Message(MK.GET_RW, 2, 0, block=b), 0.0)
        drain(m)
        assert entry.state == DirState.EXCLUSIVE
        assert entry.owner == 2
        assert m.nodes[0].tags.get(b) is AccessTag.INVALID
        assert m.nodes[2].tags.get(b) is AccessTag.READ_WRITE


class TestShared:
    def shared_entry(self, setup, sharers):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        entry.state = DirState.SHARED
        entry.sharers = set(sharers)
        m.nodes[0].tags.set(b, AccessTag.READ_ONLY)
        for s in sharers:
            m.nodes[s].tags.set(b, AccessTag.READ_ONLY)
        return m, proto, b, entry

    def test_additional_reader_joins(self, setup):
        m, proto, b, entry = self.shared_entry(setup, {1})
        expect_grant(proto, 2, b)
        proto.dispatch(entry, MK.GET_RO, Message(MK.GET_RO, 2, 0, block=b), 0.0)
        drain(m)
        assert entry.sharers == {1, 2}

    def test_write_by_sole_sharer_upgrades_immediately(self, setup):
        m, proto, b, entry = self.shared_entry(setup, {1})
        expect_grant(proto, 1, b, "w")
        proto.dispatch(entry, MK.GET_RW, Message(MK.GET_RW, 1, 0, block=b), 0.0)
        drain(m)
        assert entry.state == DirState.EXCLUSIVE
        assert entry.owner == 1

    def test_write_with_other_sharers_goes_busy(self, setup):
        m, proto, b, entry = self.shared_entry(setup, {1, 2})
        expect_grant(proto, 3, b, "w")
        proto.dispatch(entry, MK.GET_RW, Message(MK.GET_RW, 3, 0, block=b), 0.0)
        assert entry.state == DirState.BUSY_INV
        assert entry.in_service == 3
        assert entry.acks_needed == 2
        drain(m)  # INVs delivered, ACKed, grant completes
        assert entry.state == DirState.EXCLUSIVE
        assert entry.owner == 3


class TestBusy:
    def test_requests_queue_while_busy(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        entry.state = DirState.BUSY_INV
        entry.in_service = 3
        entry.acks_needed = 1
        proto.dispatch(entry, MK.GET_RO, Message(MK.GET_RO, 2, 0, block=b), 0.0)
        assert len(entry.pending) == 1
        assert entry.pending[0].requester == 2

    def test_unexpected_ack_rejected(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        entry.state = DirState.BUSY_INV
        entry.in_service = 3
        entry.acks_needed = 0
        with pytest.raises(ProtocolError):
            proto.dispatch(entry, MK.ACK, Message(MK.ACK, 1, 0, block=b), 0.0)

    def test_writeback_from_non_owner_rejected(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        entry.state = DirState.BUSY_RECALL_RO
        entry.owner = 2
        entry.in_service = 1
        with pytest.raises(ProtocolError):
            proto.dispatch(entry, MK.WB_DATA, Message(MK.WB_DATA, 3, 0, block=b), 0.0)

    def test_owner_refaulting_on_own_block_rejected(self, setup):
        m, proto, b = setup
        entry = proto.directory.entry(b)
        entry.state = DirState.EXCLUSIVE
        entry.owner = 2
        with pytest.raises(ProtocolError):
            proto.dispatch(entry, MK.GET_RO, Message(MK.GET_RO, 2, 0, block=b), 0.0)


class TestInfrastructureErrors:
    def test_data_without_outstanding_fault(self, setup):
        m, proto, b = setup
        with pytest.raises(ProtocolError):
            proto.complete_fault(1, b, 0.0)

    def test_wrong_block_completion(self, setup):
        m, proto, b = setup
        proto.outstanding[1] = (object(), b, "r")
        with pytest.raises(ProtocolError):
            proto.complete_fault(1, b + 1, 0.0)
        proto.outstanding.clear()

    def test_handle_extra_rejects_unknown_kind(self, setup):
        m, proto, b = setup
        with pytest.raises(ProtocolError):
            proto.handle_extra(Message("BOGUS", 1, 0, block=b), 0.0)

    def test_request_at_non_home_rejected(self, setup):
        m, proto, b = setup
        with pytest.raises(ProtocolError):
            proto._handle(Message(MK.GET_RO, 2, 1, block=b), 0.0)
