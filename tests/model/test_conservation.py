"""Property: per-phase category cycles always sum to the run's totals.

The analytical model predicts *into* the per-phase cost-category schema, so
the schema must be conserved wherever the simulator produces it — under
every protocol, with and without injected faults, for arbitrary access
patterns.  Hypothesis drives random multi-phase workloads through a small
machine and asserts both conservation invariants the model relies on:
category cycles sum to wall time per node, and phase breakdowns telescope
to the node accumulators per category.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.model import predict
from repro.tempest.machine import PhaseTrace
from repro.util import MachineConfig

from tests.helpers import small_machine

N_NODES = 3
N_BLOCKS = 8

# one phase = for each node, a few (read/write, block-offset) accesses
phase_strategy = st.lists(
    st.lists(st.tuples(st.sampled_from("rw"),
                       st.integers(0, N_BLOCKS - 1)),
             max_size=6),
    min_size=N_NODES, max_size=N_NODES)
workload_strategy = st.lists(phase_strategy, min_size=1, max_size=5)

FAULT_REGIMES = {
    "fault-free": None,
    "transport": FaultPlan(events=(
        FaultEvent("drop", ("msg", "GET_RO", 1, 0, 0, 0, 0)),
        FaultEvent("delay", ("msg", "DATA_RO", 0, 1, 0, 0, 0), amount=500.0),
        FaultEvent("dup", ("msg", "GET_RW", 2, 0, 0, 0, 0)),
    )),
    "schedule": FaultPlan(events=(
        FaultEvent("stale", ("sched", 1, 0)),
        FaultEvent("corrupt", ("sched", 2, 1)),
    )),
}


def run_workload(protocol, plan, phases):
    m, first = small_machine(protocol, n_nodes=N_NODES)
    if plan is not None:
        m.install_fault_plan(plan)
    # write-update requires producer-owned data: non-home nodes only read
    # (the region is homed on node 0)
    demote = protocol == "write-update"
    for d, phase in enumerate(phases, start=1):
        ops = [[("r" if demote and node != 0 else kind, first + off)
                for kind, off in node_ops]
               for node, node_ops in enumerate(phase)]
        m.begin_group(d)
        m.run_phase(PhaseTrace(f"d{d}", ops))
        m.end_group()
    return m.finish()


class TestSimConservation:
    @given(workload_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stache(self, phases):
        self.check_all_regimes("stache", phases)

    @given(workload_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_predictive(self, phases):
        self.check_all_regimes("predictive", phases)

    @given(workload_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_write_update(self, phases):
        self.check_all_regimes("write-update", phases)

    def check_all_regimes(self, protocol, phases):
        for plan in FAULT_REGIMES.values():
            stats = run_workload(protocol, plan, phases)
            # finish() already ran check_conservation; the phase schema
            # must telescope too
            stats.check_phase_conservation()
            assert len(stats.phases) == len(phases)


class TestModelConservation:
    """The model's predicted stats obey the same invariants it consumes."""

    def test_all_protocols(self):
        from repro.apps import barnes, water

        cfg = MachineConfig(n_nodes=4, page_size=512)
        spmd_kw = dict(n=24, iterations=2, theta=0.6, dt=0.15,
                       vel_scale=1.0, work_scale=5.0)
        cases = [
            (water, dict(n=16, iterations=2), "cstar", "stache", False, cfg),
            (water, dict(n=16, iterations=2), "cstar", "predictive", True,
             cfg),
            (barnes, spmd_kw, "spmd", "write-update", False,
             cfg.with_(page_size=1024, per_byte_cost=1.15)),
        ]
        for app, kw, variant, protocol, optimized, config in cases:
            pred = predict(app, kw, protocol=protocol, optimized=optimized,
                           config=config, variant=variant).stats
            pred.check_conservation()
            pred.check_phase_conservation()
