"""The value-pass recording and its block/home layout vs. the simulator."""

import numpy as np
import pytest

from repro.apps import water
from repro.core import make_machine
from repro.model.layout import LayoutModel
from repro.model.recording import record_program, recording_key
from repro.util import MachineConfig
from repro.util.errors import ConfigError

TINY = dict(n=16, iterations=2)
CFG = MachineConfig(n_nodes=4, page_size=512)


def recording():
    return record_program(water, TINY, n_nodes=4, page_size=512)


class TestRecording:
    def test_cached_by_key(self):
        assert recording() is recording()
        assert (recording_key(water, TINY, "cstar", 4, 512)
                == recording_key(water, dict(TINY), "cstar", 4, 512))

    def test_phase_names_match_sim(self):
        cfg = CFG.with_(block_size=32)
        m = make_machine(cfg, "stache")
        stats = water.build(**TINY).run(m, optimized=False).finish()
        rec_names = [ph.name for ph in recording().phases()]
        assert rec_names == [p.phase_name for p in stats.phases]

    def test_block_size_free(self):
        # one recording serves every block size: accesses are stored as
        # (aggregate, element), not as blocks
        rec = recording()
        for bs in (32, 64, 256):
            layout = LayoutModel(rec, CFG.with_(block_size=bs))
            assert layout.block_size == bs


class TestLayoutModel:
    def test_home_matches_address_space(self):
        rec = recording()
        cfg = CFG.with_(block_size=32)
        layout = LayoutModel(rec, cfg)
        m = make_machine(cfg, "stache")
        # rebuild the same program on a real machine: region bases are
        # page-aligned and declaration-ordered, so homes must agree
        water.build(**TINY).run(m, optimized=False).finish()
        checked = 0
        for ph in rec.phases():
            for node in range(rec.n_nodes):
                if not len(ph.flat[node]):
                    continue
                blocks = layout.blocks(ph.agg[node], ph.flat[node])
                for b in np.unique(blocks)[:8]:
                    assert layout.home(int(b)) == m.home(int(b))
                    checked += 1
            if checked:
                break  # one phase of agreement is representative
        assert checked > 0

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            LayoutModel(recording(), MachineConfig(n_nodes=8, page_size=512))

    def test_page_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            LayoutModel(recording(),
                        MachineConfig(n_nodes=4, page_size=4096))
