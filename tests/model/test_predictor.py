"""The analytical model against the simulator on small workloads."""

import pytest

from repro.apps import barnes, water
from repro.bench.harness import VersionSpec, run_version
from repro.model import predict
from repro.model.predictor import clear_walk_cache
from repro.sim.stats import TimeCategory
from repro.util import MachineConfig
from repro.util.errors import ConfigError

# tiny but steal-free configurations: the walk reproduces the simulator's
# counters exactly (coarse blocks with mid-phase ping-pong would not be)
TINY = dict(n=24, iterations=2, work_scale=8.0)
CFG = MachineConfig(n_nodes=4, page_size=512)
# write-update needs producer-owned data: the SPMD Barnes variant
TINY_SPMD = dict(n=24, iterations=2, theta=0.6, dt=0.15, vel_scale=1.0,
                 work_scale=5.0)
CFG_SPMD = MachineConfig(n_nodes=4, page_size=1024, per_byte_cost=1.15)


def sim_stats(protocol="stache", optimized=False, variant="cstar", cfg=CFG,
              app=water, kw=TINY):
    spec = VersionSpec("v", app, protocol, optimized, cfg, dict(kw),
                       variant=variant)
    return run_version(spec).stats


class TestExactCounters:
    """On fine-grain workloads the walk reproduces the sim's counters."""

    @pytest.mark.parametrize("app,kw,cfg,variant,protocol,optimized", [
        (water, TINY, CFG, "cstar", "stache", False),
        (water, TINY, CFG, "cstar", "predictive", True),
        (barnes, TINY_SPMD, CFG_SPMD, "spmd", "write-update", False),
    ])
    def test_counts_match_sim(self, app, kw, cfg, variant, protocol,
                              optimized):
        sim = sim_stats(protocol, optimized, variant, cfg, app, kw)
        pred = predict(app, dict(kw), protocol=protocol,
                       optimized=optimized, config=cfg,
                       variant=variant).stats
        assert pred.misses == sim.misses
        assert pred.local_hits == sim.local_hits
        assert pred.messages == sim.messages
        assert pred.bytes_on_wire == sim.bytes_on_wire

    def test_presend_counts_exact(self):
        sim = sim_stats("predictive", True)
        pred = predict(water, dict(TINY), protocol="predictive",
                       optimized=True, config=CFG).stats
        for attr in ("presend_blocks_sent", "presend_blocks_received",
                     "presend_useless_blocks"):
            assert ([getattr(n, attr) for n in pred.nodes]
                    == [getattr(n, attr) for n in sim.nodes]), attr

    def test_compute_cycles_exact(self):
        sim = sim_stats("stache", False)
        pred = predict(water, dict(TINY), protocol="stache",
                       optimized=False, config=CFG).stats
        assert pred.totals()[TimeCategory.COMPUTE] == pytest.approx(
            sim.totals()[TimeCategory.COMPUTE])

    def test_wall_time_close(self):
        for protocol, optimized in [("stache", False), ("predictive", True)]:
            sim = sim_stats(protocol, optimized)
            pred = predict(water, dict(TINY), protocol=protocol,
                           optimized=optimized, config=CFG).stats
            assert pred.wall_time == pytest.approx(sim.wall_time, rel=0.10)


class TestPredictionShape:
    def test_conservation_holds(self):
        pred = predict(water, dict(TINY), protocol="predictive",
                       optimized=True, config=CFG).stats
        pred.check_conservation()
        pred.check_phase_conservation()

    def test_phase_sequence_matches_sim(self):
        sim = sim_stats("stache", False)
        pred = predict(water, dict(TINY), protocol="stache",
                       optimized=False, config=CFG).stats
        assert ([p.phase_name for p in pred.phases]
                == [p.phase_name for p in sim.phases])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            predict(water, dict(TINY), protocol="mesi", optimized=False,
                    config=CFG)

    def test_deterministic(self):
        kw = dict(protocol="predictive", optimized=True, config=CFG)
        a = predict(water, dict(TINY), **kw).stats
        b = predict(water, dict(TINY), **kw).stats
        assert a.to_dict() == b.to_dict()


class TestWalkCache:
    """Cost-axis sweeps reuse one walk: only cost parameters change."""

    def test_cost_axes_hit_the_cache(self):
        clear_walk_cache()
        first = predict(water, dict(TINY), protocol="stache",
                        optimized=False, config=CFG)
        assert not first.walk_cached
        again = predict(water, dict(TINY), protocol="stache",
                        optimized=False,
                        config=CFG.with_(msg_latency=4000, fault_cost=50))
        assert again.walk_cached

    def test_block_size_changes_miss_the_cache(self):
        clear_walk_cache()
        predict(water, dict(TINY), protocol="stache", optimized=False,
                config=CFG)
        other = predict(water, dict(TINY), protocol="stache",
                        optimized=False, config=CFG.with_(block_size=64))
        assert not other.walk_cached

    def test_cached_walk_same_prediction(self):
        clear_walk_cache()
        cold = predict(water, dict(TINY), protocol="predictive",
                       optimized=True, config=CFG).stats
        warm = predict(water, dict(TINY), protocol="predictive",
                       optimized=True, config=CFG).stats
        assert cold.to_dict() == warm.to_dict()

    def test_cost_change_actually_changes_cycles(self):
        base = predict(water, dict(TINY), protocol="stache",
                       optimized=False, config=CFG).stats
        slow = predict(water, dict(TINY), protocol="stache",
                       optimized=False,
                       config=CFG.with_(msg_latency=4000)).stats
        assert slow.wall_time > base.wall_time
        assert slow.misses == base.misses  # counts are cost-independent
