"""Calibration document round-trips and the coefficient plumbing."""

import json

import pytest

from repro.model import (
    Calibration,
    default_calibration,
    load_calibration,
    save_calibration,
)
from repro.model.calibrate import CALIBRATION_SCHEMA
from repro.util.errors import ConfigError


def sample():
    return Calibration(
        alpha={"stache": 0.0, "predictive": 0.0},
        gamma={"stache": 1.0, "predictive": 1.0},
        delta={"stache": 0.525, "predictive": 0.545},
        diagnostics={"stache": {"rms_wall_err_before": 0.4,
                                "rms_wall_err_after": 0.005}},
    )


class TestCalibration:
    def test_for_protocol_defaults(self):
        cal = sample()
        assert cal.for_protocol("stache") == (0.0, 1.0, 0.525)
        # unknown protocol -> the identity (raw contention, no residuals)
        assert cal.for_protocol("write-update") == (0.0, 1.0, 0.0)

    def test_default_calibration_is_identity(self):
        cal = default_calibration()
        for p in ("stache", "predictive", "write-update"):
            assert cal.for_protocol(p) == (0.0, 1.0, 0.0)

    def test_doc_round_trip(self):
        cal = sample()
        doc = cal.to_doc()
        assert doc["schema"] == CALIBRATION_SCHEMA
        back = Calibration.from_doc(doc)
        assert back.alpha == cal.alpha
        assert back.gamma == cal.gamma
        assert back.delta == cal.delta
        assert back.diagnostics == cal.diagnostics

    def test_doc_is_json_clean(self):
        # atomic_write_json serializes with sort_keys; must not smuggle
        # numpy scalars or other non-JSON types
        text = json.dumps(sample().to_doc(), sort_keys=True)
        assert Calibration.from_doc(json.loads(text)).delta["stache"] == 0.525

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigError):
            Calibration.from_doc({"schema": "something-else/v9"})

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "cal.json"
        save_calibration(path, sample())  # creates the parent
        back = load_calibration(path)
        assert back.delta == sample().delta

    def test_saved_bytes_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_calibration(a, sample())
        save_calibration(b, sample())
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes().endswith(b"\n")
