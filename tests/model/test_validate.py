"""The cross-validation gate logic (synthetic rows; no sims here)."""

import pytest

from repro.model import validate as mv
from repro.util.errors import ReproError


def row(label="case", protocol="predictive", wall_err=0.01, compute_err=0.0,
        miss_err=0.0, sim_sent=100, model_sent=100, sim_useless=5,
        model_useless=5):
    return {
        "label": label,
        "protocol": protocol,
        "errors": {"wall_time": wall_err, "compute": compute_err,
                   "misses": miss_err},
        "presend": {"sim_sent": sim_sent, "model_sent": model_sent,
                    "sim_useless": sim_useless,
                    "model_useless": model_useless},
    }


class TestCaseFailures:
    def test_clean_case_passes(self):
        assert mv._case_failures(row()) == []

    def test_wall_budget_enforced(self):
        assert mv._case_failures(row(wall_err=0.11))
        assert not mv._case_failures(row(wall_err=-0.09))

    def test_infinite_wall_error_fails(self):
        assert mv._case_failures(row(wall_err=None))

    def test_compute_must_be_exact(self):
        assert mv._case_failures(row(compute_err=0.001))

    def test_presend_exact_when_misses_exact(self):
        # the walk reproduced the miss stream -> any drift is a bug
        bad = row(miss_err=0.0, sim_sent=100, model_sent=101)
        assert mv._case_failures(bad)

    def test_presend_budget_when_learning_timing_dependent(self):
        ok = row(miss_err=-0.05, sim_sent=245, model_sent=256)
        assert mv._case_failures(ok) == []
        bad = row(miss_err=-0.05, sim_sent=245, model_sent=300)
        assert mv._case_failures(bad)

    def test_presend_ignored_for_stache(self):
        r = row(protocol="stache", sim_sent=0, model_sent=3)
        assert mv._case_failures(r) == []


class TestRelErr:
    def test_signed(self):
        assert mv._rel_err(110.0, 100.0) == pytest.approx(0.1)
        assert mv._rel_err(90.0, 100.0) == pytest.approx(-0.1)

    def test_zero_sim_zero_model_is_exact(self):
        assert mv._rel_err(0, 0) == 0.0

    def test_zero_sim_nonzero_model_is_none(self):
        assert mv._rel_err(3, 0) is None


class TestGridShape:
    def grid(self, walls):
        return {"rows": [{"wall_time": w} for w in walls]}

    def test_identical_grids(self):
        shape = mv._grid_shape(self.grid([1.0, 2.0, 3.0]),
                               self.grid([1.0, 2.0, 3.0]))
        assert shape["max_wall_err"] == 0.0
        assert shape["ordering_agreement"] == 1.0

    def test_ordering_disagreement_counted(self):
        shape = mv._grid_shape(self.grid([1.0, 2.0, 3.0]),
                               self.grid([1.0, 3.0, 2.0]))
        assert shape["ordering_agreement"] < 1.0

    def test_size_mismatch_raises(self):
        with pytest.raises(ReproError):
            mv._grid_shape(self.grid([1.0]), self.grid([1.0, 2.0]))


class TestCompareValidation:
    def doc(self, wall_err, failures=()):
        return {"cases": [row(wall_err=wall_err)],
                "failures": list(failures)}

    def test_pass_when_stable(self):
        assert mv.compare_validation(self.doc(0.02), self.doc(0.02)) == []

    def test_fresh_failures_propagate(self):
        problems = mv.compare_validation(self.doc(0.02),
                                         self.doc(0.02, ["boom"]))
        assert problems == ["boom"]

    def test_growth_past_budget_flagged(self):
        problems = mv.compare_validation(self.doc(0.05), self.doc(0.12))
        assert problems

    def test_growth_within_budget_tolerated(self):
        assert mv.compare_validation(self.doc(0.05), self.doc(0.06)) == []

    def test_committed_only_cases_ignored(self):
        committed = {"cases": [row(label="other")], "failures": []}
        assert mv.compare_validation(committed, self.doc(0.02)) == []


class TestLoadValidation:
    def test_round_trip(self, tmp_path):
        doc = {"schema": mv.VALIDATION_SCHEMA, "cases": [], "failures": [],
               "passed": True}
        mv.save_validation(tmp_path / "v.json", doc)
        assert mv.load_validation(tmp_path / "v.json") == doc

    def test_wrong_schema_rejected(self, tmp_path):
        mv.save_validation(tmp_path / "v.json", {"schema": "nope/v1"})
        with pytest.raises(ReproError):
            mv.load_validation(tmp_path / "v.json")


class TestSpecs:
    def test_full_matrix_covers_all_protocols_and_figures(self):
        specs = mv.validation_specs()
        assert len(specs) == 12
        protocols = {s.protocol for s in specs}
        assert protocols == {"stache", "predictive", "write-update"}
        figures = {s.label.split("/")[0] for s in specs}
        assert figures == {"fig5", "fig6", "fig7"}

    def test_quick_subset_still_crosses_protocols(self):
        quick = mv.validation_specs(quick=True)
        assert len(quick) < 6
        assert {s.protocol for s in quick} == {"stache", "predictive",
                                               "write-update"}
        full_labels = {s.label for s in mv.validation_specs()}
        assert {s.label for s in quick} <= full_labels
