"""Byte-determinism of the committed model artifacts.

The calibration and validation documents are committed to ``benchmarks/``;
CI regenerates them and compares bytes (``cmp``-style).  These tests hold
the same line in-process: regeneration must be byte-identical, and the
committed calibration must match what today's code produces.
"""

import pathlib

import pytest

from repro.model import calibrate, save_calibration
from repro.model import validate as mv

BENCHMARKS = pathlib.Path(__file__).parent.parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def fitted():
    return calibrate()


class TestCalibrationDeterminism:
    def test_matches_committed_artifact(self, fitted, tmp_path):
        committed = BENCHMARKS / "MODEL_calibration.json"
        assert committed.is_file(), "run: repro model --calibrate"
        fresh = tmp_path / "cal.json"
        save_calibration(fresh, fitted)
        assert fresh.read_bytes() == committed.read_bytes()

    def test_coefficients_sane(self, fitted):
        for p in ("stache", "predictive", "write-update"):
            alpha, gamma, delta = fitted.for_protocol(p)
            assert alpha == 0.0
            assert gamma == 1.0
            assert 0.0 <= delta <= 2.0
        # write-update forbids remote writes: no ping-pong to fit
        assert fitted.delta["write-update"] == 0.0

    def test_fit_improves_or_preserves_references(self, fitted):
        for p, diag in fitted.diagnostics.items():
            assert (diag["rms_wall_err_after"]
                    <= diag["rms_wall_err_before"] + 1e-12), p


class TestValidationDeterminism:
    def test_quick_profile_regenerates_identically(self, fitted, tmp_path):
        a = mv.validate(fitted, quick=True)
        b = mv.validate(fitted, quick=True)
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        mv.save_validation(pa, a)
        mv.save_validation(pb, b)
        assert pa.read_bytes() == pb.read_bytes()
        assert "measured" not in a  # timing stays out unless asked

    def test_committed_validation_in_budget(self):
        committed = BENCHMARKS / "MODEL_validation.json"
        assert committed.is_file(), "run: repro model --suite --write"
        doc = mv.load_validation(committed)
        assert doc["passed"], doc["failures"]
        assert doc["profile"] == "full"
        assert len(doc["cases"]) == 12
        # the headline demonstration: >=100x on the committed sweep grid
        assert doc["measured"]["speedup"] >= 100.0
        assert doc["sweep_demo"]["shape"]["ordering_agreement"] >= 0.95
