"""Structured sweep grids: sim/model shape parity and atomic export."""

import csv
import json

import pytest

from repro.apps import water
from repro.bench.sweeps import (
    GRID_COLUMNS,
    SWEEP_AXES,
    SWEEP_SCHEMA,
    _grid_points,
    export_grid,
    render_grid,
    sweep_grid,
)
from repro.util import MachineConfig
from repro.util.errors import ConfigError

TINY = dict(n=24, iterations=2, work_scale=8.0)
CFG = MachineConfig(n_nodes=4, page_size=512)
AXES = {"msg_latency": [500, 1000], "fault_cost": [50, 100]}


def grid(backend, axes=AXES, **kwargs):
    return sweep_grid(water, TINY, base_config=CFG, axes=axes,
                      backend=backend, protocol="stache", **kwargs)


class TestGridPoints:
    def test_canonical_axis_order(self):
        # given out of canonical order, points still come out canonical
        points = _grid_points({"fault_cost": [1], "protocol": ["stache"]})
        assert list(points[0]) == ["protocol", "fault_cost"]

    def test_cartesian_product(self):
        assert len(_grid_points(AXES)) == 4

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            _grid_points({"page_size": [512]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            _grid_points({"msg_latency": []})


class TestBackendParity:
    def test_same_document_shape(self):
        sim = grid("sim")
        model = grid("model")
        assert sim["schema"] == model["schema"] == SWEEP_SCHEMA
        assert sim["axes"] == model["axes"]
        assert sim["columns"] == model["columns"] == list(GRID_COLUMNS)
        assert len(sim["rows"]) == len(model["rows"])
        for srow, mrow in zip(sim["rows"], model["rows"]):
            assert list(srow) == list(mrow)  # same keys, same order
            for axis in AXES:
                assert srow[axis] == mrow[axis]

    def test_counts_agree_on_fine_grain(self):
        sim = grid("sim")
        model = grid("model")
        for srow, mrow in zip(sim["rows"], model["rows"]):
            assert srow["misses"] == mrow["misses"]
            assert srow["messages"] == mrow["messages"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            grid("quantum")

    def test_protocol_axis_overrides_default(self):
        doc = grid("model", axes={"protocol": ["stache", "predictive"]})
        assert [r["protocol"] for r in doc["rows"]] == ["stache",
                                                        "predictive"]

    def test_model_grid_deterministic(self):
        a, b = grid("model"), grid("model")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestExport:
    def test_json_export(self, tmp_path):
        doc = grid("model")
        out = tmp_path / "grid.json"
        export_grid(out, doc)
        assert json.loads(out.read_text()) == doc

    def test_csv_export(self, tmp_path):
        doc = grid("model")
        out = tmp_path / "grid.csv"
        export_grid(out, doc)
        with out.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(AXES) + list(GRID_COLUMNS)
        assert len(rows) == 1 + len(doc["rows"])
        assert rows[1][0] == "500"  # first msg_latency value

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            export_grid(tmp_path / "grid.xlsx", grid("model"))

    def test_render_mentions_every_point(self):
        doc = grid("model")
        text = render_grid(doc)
        assert "4 points" in text
        assert "wall_time" in text


class TestAxesRegistry:
    def test_all_axes_are_config_fields_or_protocol(self):
        from dataclasses import fields

        names = {f.name for f in fields(MachineConfig)}
        for axis in SWEEP_AXES:
            assert axis == "protocol" or axis in names
