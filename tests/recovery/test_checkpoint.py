"""Tests for deterministic checkpoint/restart.

The snapshot is the determinism oracle: two machines are equivalent iff
their snapshots are equal, and interrupting a session at a quiescent
point, restoring from the checkpoint, and replaying the rest must be
bit-identical to the uninterrupted run — under every protocol, with or
without injected faults.
"""

import json

import pytest

from repro.core import make_machine
from repro.faults import CRASH_PLANS, FaultPlan
from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_machine,
    save_checkpoint,
    snapshot_machine,
)
from repro.tempest.tracefile import replay_session
from repro.util import SimulationError
from repro.verify.workload import generate_workload

CHAOS = FaultPlan(name="chaos-lite", drop_rate=0.02, dup_rate=0.03,
                  delay_rate=0.05, delay_cycles=200.0, seed=11)
CRASH = CRASH_PLANS["crash"].with_(seed=5)


def _run_full(workload, protocol, plan=None):
    """Uninterrupted run; returns the end-of-run snapshot."""
    machine = make_machine(workload.config, protocol)
    if plan is not None:
        machine.install_fault_plan(plan)
    replay_session(workload.session, machine, finish=False)
    return snapshot_machine(machine)


def _run_interrupted(workload, protocol, plan=None, cut=None):
    """Run to ``cut`` events, checkpoint, restore, replay the rest."""
    events, regions = workload.session
    cut = cut if cut is not None else len(events) // 2
    machine = make_machine(workload.config, protocol)
    if plan is not None:
        machine.install_fault_plan(plan)
    # a cut can land mid-recovery (e.g. a restart still pending); step
    # forward to the next quiescent event boundary before checkpointing
    replay_session((events[:cut], regions), machine, finish=False)
    while True:
        try:
            snap = snapshot_machine(machine)
            break
        except SimulationError:
            if cut >= len(events):
                raise
            replay_session(([events[cut]], regions), machine,
                           regions=[], finish=False)
            cut += 1
    resumed = restore_machine(snap)
    replay_session((events[cut:], regions), resumed,
                   regions=[], finish=False)
    return snap, snapshot_machine(resumed)


class TestSnapshotOracle:
    def test_identical_runs_have_equal_snapshots(self):
        w = generate_workload(0)
        assert _run_full(w, "stache") == _run_full(w, "stache")

    def test_snapshot_is_json_canonical(self, tmp_path):
        w = generate_workload(0)
        machine = make_machine(w.config, "predictive")
        machine.install_fault_plan(CRASH)
        replay_session(w.session, machine, finish=False)
        snap = save_checkpoint(machine, tmp_path / "ckpt.json")
        loaded = load_checkpoint(tmp_path / "ckpt.json")
        assert loaded == snap
        # the snapshot survives a round-trip through json itself
        assert json.loads(json.dumps(snap)) == snap

    def test_restore_is_a_fixed_point(self):
        w = generate_workload(0)
        for proto in w.protocols:
            snap = _run_full(w, proto, plan=CRASH)
            assert snapshot_machine(restore_machine(snap)) == snap


class TestInterruptedReplay:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_resume_is_bit_identical_fault_free(self, seed):
        w = generate_workload(seed)
        for proto in w.protocols:
            _, resumed = _run_interrupted(w, proto)
            assert resumed == _run_full(w, proto)

    @pytest.mark.parametrize("plan", [CHAOS, CRASH],
                             ids=["chaos-lite", "crash"])
    def test_resume_is_bit_identical_under_faults(self, plan):
        w = generate_workload(0)
        for proto in w.protocols:
            _, resumed = _run_interrupted(w, proto, plan=plan)
            assert resumed == _run_full(w, proto, plan=plan)

    def test_resume_from_disk(self, tmp_path):
        w = generate_workload(0)
        events, regions = w.session
        cut = len(events) // 2
        machine = make_machine(w.config, "predictive")
        replay_session((events[:cut], regions), machine, finish=False)
        save_checkpoint(machine, tmp_path / "mid.json")
        resumed = restore_machine(load_checkpoint(tmp_path / "mid.json"))
        replay_session((events[cut:], regions), resumed,
                       regions=[], finish=False)
        assert snapshot_machine(resumed) == _run_full(w, "predictive")

    def test_every_prefix_resumes_identically(self):
        # exhaustive over one short workload: cut after each event
        w = generate_workload(1)
        events, _ = w.session
        want = {p: _run_full(w, p) for p in w.protocols}
        for proto in w.protocols:
            for cut in range(1, len(events)):
                _, resumed = _run_interrupted(w, proto, cut=cut)
                assert resumed == want[proto], f"cut={cut} proto={proto}"


class TestGuards:
    def test_mid_flight_snapshot_is_refused(self):
        w = generate_workload(0)
        machine = make_machine(w.config, "stache")
        replay_session(w.session, machine, finish=False)
        machine.engine.schedule_after(10.0, lambda: None)
        with pytest.raises(SimulationError, match="quiescent"):
            snapshot_machine(machine)

    def test_version_mismatch_is_refused(self):
        w = generate_workload(0)
        snap = _run_full(w, "stache")
        assert snap["version"] == CHECKPOINT_VERSION
        bad = dict(snap)
        bad["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(SimulationError, match="version"):
            restore_machine(bad)

    def test_finish_false_leaves_stats_open(self):
        w = generate_workload(0)
        machine = make_machine(w.config, "stache")
        stats = replay_session(w.session, machine, finish=False)
        assert stats is machine.stats
        # the machine is still live: snapshot, then close out normally
        snapshot_machine(machine)
        machine.finish()
