"""Property tests for the bounded LRU ScheduleStore.

Three invariants must hold under arbitrary fetch sequences:

* **bounded**: the store never holds more than ``capacity`` schedules;
* **LRU order**: ``keys()`` lists directives least- to most-recently
  *fetched*, and the evicted victim is always the stalest one;
* **lossless relearning**: an evicted schedule, re-fetched and re-taught
  the same access history, snapshots identically to the original — eviction
  can cost faults, never correctness.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import CommSchedule, ScheduleStore

directive_ids = st.integers(min_value=0, max_value=30)
fetch_sequences = st.lists(directive_ids, min_size=0, max_size=120)
capacities = st.integers(min_value=1, max_value=8)

# one learning step: (block, requester, kind)
history_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.sampled_from("rw"),
    ),
    min_size=0,
    max_size=24,
)


def _reference_lru(seq: list[int], capacity: int) -> OrderedDict:
    """The obvious model: an OrderedDict trimmed from the stale end."""
    model: OrderedDict = OrderedDict()
    for d in seq:
        if d in model:
            model.move_to_end(d)
        else:
            model[d] = True
            while len(model) > capacity:
                model.popitem(last=False)
    return model


@settings(max_examples=200)
@given(seq=fetch_sequences, capacity=capacities)
def test_size_is_bounded(seq, capacity):
    store = ScheduleStore(capacity)
    for d in seq:
        store.fetch(d)
        assert len(store) <= capacity


@settings(max_examples=200)
@given(seq=fetch_sequences, capacity=capacities)
def test_lru_order_matches_reference_model(seq, capacity):
    store = ScheduleStore(capacity)
    for d in seq:
        store.fetch(d)
    model = _reference_lru(seq, capacity)
    assert list(store.keys()) == list(model.keys())
    assert store.evictions == len(set(seq)) - len(model) + _re_admissions(
        seq, capacity
    )


def _re_admissions(seq: list[int], capacity: int) -> int:
    """How many fetches found their directive already evicted."""
    model: OrderedDict = OrderedDict()
    re_admitted = 0
    seen: set[int] = set()
    for d in seq:
        if d in model:
            model.move_to_end(d)
        else:
            if d in seen:
                re_admitted += 1
            seen.add(d)
            model[d] = True
            while len(model) > capacity:
                model.popitem(last=False)
    return re_admitted


@settings(max_examples=200)
@given(seq=fetch_sequences, capacity=capacities)
def test_reads_do_not_touch_recency(seq, capacity):
    store = ScheduleStore(capacity)
    for d in seq:
        store.fetch(d)
        if d in store:  # dict-flavoured reads must not reorder
            store[d]
            store.get(d)
    model = _reference_lru(seq, capacity)
    assert list(store.keys()) == list(model.keys())


@settings(max_examples=150)
@given(history=history_steps, filler=st.integers(min_value=2, max_value=6))
def test_evicted_schedule_relearns_identically(history, filler):
    store = ScheduleStore(capacity=filler)
    first = store.fetch(0)
    first.begin_instance()
    for block, requester, kind in history:
        first.record(block, requester, kind)
    original = first.snapshot()

    for d in range(1, filler + 1):  # push directive 0 out
        store.fetch(d)
    assert 0 not in store
    assert store.evictions >= 1

    relearned = store.fetch(0)
    assert relearned is not first  # a genuinely fresh schedule
    relearned.begin_instance()
    for block, requester, kind in history:
        relearned.record(block, requester, kind)
    assert relearned.snapshot() == original


@settings(max_examples=100)
@given(seq=fetch_sequences)
def test_resident_schedules_keep_identity(seq):
    # while a directive stays resident, fetch always returns the same object
    store = ScheduleStore(capacity=64)  # nothing evicts at this size
    objects: dict[int, CommSchedule] = {}
    for d in seq:
        sched = store.fetch(d)
        assert objects.setdefault(d, sched) is sched
