"""Degradation cooldown must survive LRU eviction (no eviction amnesty).

A chronically mispredicting schedule sits out ``cooldown`` instances.  If
capacity pressure evicts it mid-cooldown, the relearned schedule must
inherit the remaining cooldown — otherwise eviction would be an amnesty
and a degraded site would resume pre-sending immediately.
"""

from __future__ import annotations

from repro.core.schedule import CommSchedule, ScheduleStore


def cooled_schedule(directive: int, cooldown: int) -> CommSchedule:
    sched = CommSchedule(directive)
    sched.cooldown = cooldown
    return sched


def test_evicted_cooldown_carries_to_relearned_schedule():
    store = ScheduleStore(capacity=1)
    store.insert(cooled_schedule(1, cooldown=5))
    store.fetch(2)  # evicts directive 1 mid-cooldown
    assert 1 not in store
    relearned = store.fetch(1)  # evicts 2, recreates 1
    assert relearned.cooldown == 5


def test_carry_is_consumed_once():
    store = ScheduleStore(capacity=1)
    store.insert(cooled_schedule(1, cooldown=3))
    store.fetch(2)
    assert store.fetch(1).cooldown == 3
    store.fetch(2)  # evict again — but cooldown now lives on the schedule
    store[2].cooldown = 0
    again = store.fetch(1)
    assert again.cooldown == 3  # re-carried from the evicted live schedule


def test_non_degraded_eviction_leaves_no_carry():
    store = ScheduleStore(capacity=1)
    store.insert(cooled_schedule(1, cooldown=0))
    store.fetch(2)
    assert store._evicted_cooldowns == {}
    assert store.fetch(1).cooldown == 0


def test_insert_clears_stale_carry():
    store = ScheduleStore(capacity=1)
    store.insert(cooled_schedule(1, cooldown=9))
    store.fetch(2)
    assert store._evicted_cooldowns == {1: 9}
    # an authoritative insert (checkpoint restore / corpus warm) outranks
    # the carried value
    store.insert(cooled_schedule(1, cooldown=2))
    assert store._evicted_cooldowns == {}
    assert store[1].cooldown == 2


def test_checkpoint_snapshot_preserves_carried_cooldowns():
    from repro.core import make_machine
    from repro.recovery.checkpoint import (_restore_predictive,
                                           _snapshot_predictive)
    from repro.util.config import MachineConfig

    cfg = MachineConfig(n_nodes=2)
    src = make_machine(cfg, "predictive")
    store = src.protocol.schedules
    store.capacity = 1
    store.insert(cooled_schedule(1, cooldown=4))
    store.fetch(2)  # evicts directive 1 mid-cooldown
    snap = _snapshot_predictive(src)
    assert snap["evicted_cooldowns"] == [[1, 4]]

    dst = make_machine(cfg, "predictive")
    _restore_predictive(dst, snap)
    assert dst.protocol.schedules._evicted_cooldowns == {1: 4}
    assert dst.protocol.schedules.fetch(1).cooldown == 4
