"""Tests of the predictive protocol: schedule building, pre-send, incrementality."""

import pytest

from repro.core import EntryKind
from repro.core.schedule import CommSchedule
from repro.sim import TimeCategory
from repro.tempest.machine import PhaseTrace
from repro.tempest.tags import AccessTag

from tests.helpers import idle_ops, run_one_phase, small_machine


def run_group(m, directive, busy, name="phase"):
    m.begin_group(directive)
    run_one_phase(m, busy, name)
    m.end_group()


class TestScheduleBuilding:
    def test_faults_recorded_into_directive_schedule(self):
        m, b = small_machine("predictive", n_nodes=3)
        run_group(m, 7, {1: [("r", b)], 2: [("r", b + 1)]})
        sched = m.protocol.schedule_for(7)
        assert sched.entries[b].readers == {1}
        assert sched.entries[b + 1].readers == {2}

    def test_no_recording_outside_group(self):
        m, b = small_machine("predictive", n_nodes=2)
        run_one_phase(m, {1: [("r", b)]})
        assert all(len(s) == 0 for s in m.protocol.schedules.values())

    def test_hits_not_recorded(self):
        m, b = small_machine("predictive", n_nodes=2)
        run_group(m, 1, {0: [("r", b), ("w", b)]})  # home accesses: local hits
        assert len(m.protocol.schedule_for(1)) == 0

    def test_write_fault_recorded_as_writer(self):
        m, b = small_machine("predictive", n_nodes=2)
        run_group(m, 1, {1: [("w", b)]})
        e = m.protocol.schedule_for(1).entries[b]
        assert e.kind is EntryKind.WRITE
        assert e.writer == 1


class TestPreSend:
    def test_second_iteration_hits_locally(self):
        m, b = small_machine("predictive", n_nodes=3)
        for _ in range(2):
            run_group(m, 1, {1: [("r", b)], 2: [("r", b)]})
        # iteration 0: two read misses; iteration 1: all pre-sent
        assert m.stats.misses == 2
        assert m.stats.local_hits == 2

    def test_presend_skips_still_valid_copies(self):
        """Nothing invalidated the consumers' copies: pre-send sends nothing."""
        m, b = small_machine("predictive", n_nodes=3)
        run_group(m, 1, {1: [("r", b)], 2: [("r", b + 1)]})
        run_group(m, 1, {1: [("r", b)], 2: [("r", b + 1)]})
        assert m.protocol.presend_blocks == 0

    def test_presend_counts_blocks(self):
        m, b = small_machine("predictive", n_nodes=3)
        run_group(m, 1, {1: [("r", b)], 2: [("r", b + 1)]})
        # producer writes invalidate the consumers' copies
        run_group(m, 2, {0: [("w", b), ("w", b + 1)]})
        run_group(m, 1, {1: [("r", b)], 2: [("r", b + 1)]})
        assert m.protocol.presend_blocks == 2
        assert m.nodes[0].stats.presend_blocks_sent == 2
        assert (
            m.nodes[1].stats.presend_blocks_received
            + m.nodes[2].stats.presend_blocks_received
            == 2
        )

    def test_predictive_time_charged(self):
        m, b = small_machine("predictive", n_nodes=2)
        run_group(m, 1, {1: [("r", b)]})
        assert m.nodes[0].stats.cycles[TimeCategory.PREDICTIVE] == 0
        run_group(m, 1, {1: [("r", b)]})
        assert m.nodes[0].stats.cycles[TimeCategory.PREDICTIVE] > 0

    def test_producer_consumer_cycle_steady_state(self):
        """Water's pattern: producer writes its own data, consumers read it.
        After the first iteration everything is pre-sent — zero misses."""
        m, b = small_machine("predictive", n_nodes=4)
        def one_iter():
            run_group(m, 1, {1: [("r", b)], 2: [("r", b)], 3: [("r", b)]}, "force")
            run_group(m, 2, {0: [("w", b)]}, "update")
        one_iter()
        miss0 = m.stats.misses
        for _ in range(3):
            one_iter()
        assert m.stats.misses == miss0  # no new misses after iteration 0
        m.finish().check_conservation()

    def test_write_presend_grants_remote_writer(self):
        """Migratory: node 1 writes node-0-homed data every iteration."""
        m, b = small_machine("predictive", n_nodes=2)
        run_group(m, 1, {1: [("w", b)]})
        assert m.nodes[1].tags.get(b) is AccessTag.READ_WRITE
        # returns home between phases? no: node 1 keeps it; presend no-ops
        run_group(m, 1, {1: [("w", b)]})
        assert m.stats.misses == 1

    def test_conflict_blocks_not_presend(self):
        m, b = small_machine("predictive", n_nodes=3)
        # same block read by 1 and written by 2 in one phase: conflict
        run_group(m, 1, {1: [("r", b)], 2: [("w", b)]})
        sched = m.protocol.schedule_for(1)
        assert sched.entries[b].kind is EntryKind.CONFLICT
        before = m.protocol.presend_blocks
        run_group(m, 1, {1: [("r", b)], 2: [("w", b)]})
        assert m.protocol.presend_blocks == before  # no action for conflicts


class TestIncremental:
    def test_new_faults_extend_schedule(self):
        """Adaptive growth: a new reader appears in iteration 2 and is
        pre-sent from iteration 3 on."""
        m, b = small_machine("predictive", n_nodes=3)
        run_group(m, 1, {1: [("r", b)]})
        run_group(m, 1, {1: [("r", b)], 2: [("r", b)]})  # node 2 is new: faults
        assert m.protocol.schedule_for(1).entries[b].readers == {1, 2}
        misses = m.stats.misses
        run_group(m, 1, {1: [("r", b)], 2: [("r", b)]})
        assert m.stats.misses == misses  # both pre-sent now

    def test_deletions_cause_useless_presends(self):
        """A reader that stops accessing keeps receiving the block (§3.3)."""
        m, b = small_machine("predictive", n_nodes=3)
        run_group(m, 1, {1: [("r", b)], 2: [("r", b)]})
        run_group(m, 2, {0: [("w", b)]})  # invalidate copies so presend resends
        run_group(m, 1, {1: [("r", b)]})  # node 2 dropped out
        assert m.nodes[2].stats.presend_useless_blocks == 1

    def test_flush_rebuilds_schedule(self):
        m, b = small_machine("predictive", n_nodes=2)
        run_group(m, 1, {1: [("r", b)]})
        m.protocol.flush_schedule(1)
        assert len(m.protocol.schedule_for(1)) == 0
        run_group(m, 1, {1: [("r", b)]})
        # after flush the (still cached) copy hits; schedule stays empty
        assert len(m.protocol.schedule_for(1)) == 0


class TestCoalescedBulk:
    def test_adjacent_blocks_travel_in_one_bulk_message(self):
        m, b = small_machine("predictive", n_nodes=2)
        blocks = [b, b + 1, b + 2, b + 3]
        run_group(m, 1, {1: [("r", blk) for blk in blocks]})
        run_group(m, 2, {0: [("w", blk) for blk in blocks]})  # take copies back
        before = m.protocol.presend_messages
        run_group(m, 1, {1: [("r", blk) for blk in blocks]})
        assert m.protocol.presend_messages - before == 1  # one bulk message
        assert m.nodes[1].stats.presend_blocks_received == 4
