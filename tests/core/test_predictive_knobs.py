"""Tests for the predictive protocol's ablation knobs and flush directive."""

import pytest

from repro.bench.ablations import predictive_knobs
from repro.core.predictive import PredictiveProtocol

from tests.helpers import run_one_phase, small_machine


def producer_consumer_iterations(m, b, iters=3, nblocks=4):
    blocks = [b + i for i in range(nblocks)]
    for _ in range(iters):
        m.begin_group(1)
        run_one_phase(m, {1: [("r", blk) for blk in blocks]})
        m.end_group()
        m.begin_group(2)
        run_one_phase(m, {0: [("w", blk) for blk in blocks]})
        m.end_group()


class TestCoalesceKnob:
    def test_knob_context_manager_restores(self):
        assert PredictiveProtocol.coalesce_presend is True
        with predictive_knobs(coalesce=False, rebuild=True):
            assert PredictiveProtocol.coalesce_presend is False
            assert PredictiveProtocol.rebuild_every_group is True
        assert PredictiveProtocol.coalesce_presend is True
        assert PredictiveProtocol.rebuild_every_group is False

    def test_uncoalesced_sends_more_messages(self):
        m, b = small_machine("predictive", n_nodes=2)
        producer_consumer_iterations(m, b)
        coalesced_msgs = m.protocol.presend_messages

        with predictive_knobs(coalesce=False):
            m2, b2 = small_machine("predictive", n_nodes=2)
            producer_consumer_iterations(m2, b2)
        assert m2.protocol.presend_messages > coalesced_msgs
        # same blocks transferred either way
        assert m2.protocol.presend_blocks == m.protocol.presend_blocks

    def test_uncoalesced_is_slower(self):
        m, b = small_machine("predictive", n_nodes=2)
        producer_consumer_iterations(m, b, iters=4, nblocks=8)
        with predictive_knobs(coalesce=False):
            m2, b2 = small_machine("predictive", n_nodes=2)
            producer_consumer_iterations(m2, b2, iters=4, nblocks=8)
        assert m2.clock > m.clock


class TestRebuildKnob:
    def test_rebuild_discards_learning(self):
        with predictive_knobs(rebuild=True):
            m, b = small_machine("predictive", n_nodes=2)
            producer_consumer_iterations(m, b)
            # every iteration faults afresh: misses grow linearly
            assert m.stats.misses >= 3 * 4  # >= iters * blocks read misses

    def test_incremental_beats_rebuild(self):
        m, b = small_machine("predictive", n_nodes=2)
        producer_consumer_iterations(m, b, iters=5)
        with predictive_knobs(rebuild=True):
            m2, b2 = small_machine("predictive", n_nodes=2)
            producer_consumer_iterations(m2, b2, iters=5)
        assert m.stats.misses < m2.stats.misses
        assert m.clock < m2.clock


class TestFlushDirective:
    def test_flush_clears_schedule(self):
        m, b = small_machine("predictive", n_nodes=2)
        producer_consumer_iterations(m, b, iters=2)
        assert len(m.protocol.schedule_for(1)) > 0
        m.protocol.flush_schedule(1)
        assert len(m.protocol.schedule_for(1)) == 0

    def test_flush_unknown_directive_is_noop(self):
        m, b = small_machine("predictive", n_nodes=2)
        m.protocol.flush_schedule(999)  # must not raise

    def test_schedule_relearns_after_flush(self):
        m, b = small_machine("predictive", n_nodes=2)
        producer_consumer_iterations(m, b, iters=2)
        m.protocol.flush_schedule(1)
        producer_consumer_iterations(m, b, iters=2)
        assert len(m.protocol.schedule_for(1)) > 0
