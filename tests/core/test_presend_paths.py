"""Targeted tests for the pre-send phase's less-common paths."""

import pytest

from repro.core.schedule import EntryKind
from repro.protocols.directory import DirState
from repro.tempest.tags import AccessTag

from tests.helpers import run_one_phase, small_machine


class TestPresendRecall:
    def test_read_presend_recalls_third_party_writer(self):
        """Block homed at 0, written by 1, read by 2 every iteration: the
        pre-send phase must recall node 1's writable copy before forwarding
        a readable copy to node 2 (the paper's four-message pattern folded
        into pre-send)."""
        m, b = small_machine("predictive", n_nodes=3)
        for _ in range(3):
            m.begin_group(1)
            run_one_phase(m, {1: [("w", b)]})
            m.end_group()
            m.begin_group(2)
            run_one_phase(m, {2: [("r", b)]})
            m.end_group()
        # steady state: group-2 presend recalls from node 1 and sends to 2
        entry = m.protocol.directory.entry(b)
        entry.check_invariants()
        # after the final read phase the block is shared by node 2
        assert m.nodes[2].tags.get(b) is AccessTag.READ_ONLY
        # and the recall left node 1 without its copy before node 2 read it
        assert m.nodes[1].tags.get(b) in (AccessTag.INVALID, AccessTag.READ_WRITE)
        m.finish().check_conservation()

    def test_recall_charges_round_trip_cost(self):
        """The synchronous recall during pre-send must cost at least two
        message flights."""
        m, b = small_machine("predictive", n_nodes=3)
        m.begin_group(1)
        run_one_phase(m, {1: [("w", b)]})
        m.end_group()
        m.begin_group(2)
        run_one_phase(m, {2: [("r", b)]})
        m.end_group()
        # next write-phase presend must reclaim from wherever the copy is;
        # then the read-phase presend runs the recall-free path
        from repro.sim import TimeCategory

        m.begin_group(2)  # presend READ: directory says node 2 shared; ok
        pred = m.stats.mean(TimeCategory.PREDICTIVE)
        assert pred > 0
        m.end_group()

    def test_presend_write_skips_if_writer_already_owns(self):
        m, b = small_machine("predictive", n_nodes=2)
        m.begin_group(1)
        run_one_phase(m, {1: [("w", b)]})
        m.end_group()
        sent_before = m.protocol.presend_blocks
        m.begin_group(1)  # node 1 still owns the block: nothing to send
        run_one_phase(m, {1: [("w", b)]})
        m.end_group()
        assert m.protocol.presend_blocks == sent_before
        assert m.stats.misses == 1  # only the first write missed


class TestBulkInstallAccounting:
    def test_bulk_install_occupies_receiver_handler(self):
        """Installing a large pre-sent run costs the receiver per-block."""
        m, b = small_machine("predictive", n_nodes=2)
        blocks = [b + i for i in range(12)]
        m.begin_group(1)
        run_one_phase(m, {1: [("r", blk) for blk in blocks]})
        m.end_group()
        m.begin_group(2)
        run_one_phase(m, {0: [("w", blk) for blk in blocks]})
        m.end_group()
        busy_before = m.nodes[1].handler_busy_until
        m.begin_group(1)
        assert m.nodes[1].handler_busy_until > busy_before
        run_one_phase(m, {1: [("r", blk) for blk in blocks]})
        m.end_group()
        assert m.nodes[1].stats.presend_blocks_received == 12

    def test_presend_inv_needs_no_ack(self):
        """PRESEND_INV is one-way (the barrier subsumes acknowledgement)."""
        m, b = small_machine("predictive", n_nodes=3)
        m.begin_group(1)
        run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
        m.end_group()
        m.begin_group(2)
        run_one_phase(m, {0: [("w", b)]})
        m.end_group()
        # the write-phase presend at iteration 2 invalidates readers 1 and 2
        msgs_before = m.stats.messages
        m.begin_group(2)
        from repro.protocols.messages import MessageKind as MK

        # readers were invalidated: their tags are gone
        assert m.nodes[1].tags.get(b) is AccessTag.INVALID
        assert m.nodes[2].tags.get(b) is AccessTag.INVALID
        m.end_group()


class TestConservationWithPresend:
    def test_heavy_presend_run_conserves(self):
        m, b = small_machine("predictive", n_nodes=4)
        blocks = [b + i for i in range(8)]
        for it in range(5):
            m.begin_group(1)
            run_one_phase(
                m, {n: [("r", blk) for blk in blocks] for n in (1, 2, 3)}
            )
            m.end_group()
            m.begin_group(2)
            run_one_phase(m, {0: [("w", blk) for blk in blocks]})
            m.end_group()
        m.finish().check_conservation()
        m.protocol.directory.check_all()
