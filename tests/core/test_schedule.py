"""Tests for communication schedules: recording, conflicts, coalescing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CommSchedule, EntryKind, coalesce_blocks


class TestRecording:
    def test_read_creates_read_entry(self):
        s = CommSchedule(1)
        e = s.record(10, requester=2, kind="r")
        assert e.kind is EntryKind.READ
        assert e.readers == {2}

    def test_write_creates_write_entry(self):
        s = CommSchedule(1)
        e = s.record(10, requester=3, kind="w")
        assert e.kind is EntryKind.WRITE
        assert e.writer == 3

    def test_readers_accumulate(self):
        s = CommSchedule(1)
        s.record(10, 1, "r")
        s.record(10, 2, "r")
        assert s.entries[10].readers == {1, 2}

    def test_writer_is_latest(self):
        s = CommSchedule(1)
        s.record(10, 1, "w")
        s.begin_instance()
        s.record(10, 2, "w")
        assert s.entries[10].writer == 2
        assert s.entries[10].kind is EntryKind.WRITE

    def test_incremental_growth_tracked(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(1, 1, "r")
        s.record(2, 1, "r")
        s.begin_instance()
        s.record(3, 1, "r")  # adaptive growth: one new block
        s.record(1, 2, "r")  # existing block: not an addition
        s.begin_instance()
        assert s.additions_per_instance[-2:] == [2, 1]


class TestConflicts:
    def test_read_then_write_same_instance_conflicts(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 1, "r")
        s.record(10, 2, "w")
        assert s.entries[10].kind is EntryKind.CONFLICT

    def test_write_then_read_same_instance_conflicts(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 2, "w")
        s.record(10, 1, "r")
        assert s.entries[10].kind is EntryKind.CONFLICT

    def test_kind_change_across_instances_is_not_conflict(self):
        """Migratory data: written one iteration, read the next."""
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 2, "w")
        s.begin_instance()
        s.record(10, 1, "r")
        assert s.entries[10].kind is EntryKind.READ

    def test_conflict_is_sticky(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 1, "r")
        s.record(10, 2, "w")
        s.begin_instance()
        s.record(10, 1, "r")
        assert s.entries[10].kind is EntryKind.CONFLICT
        assert s.conflict_blocks() == [10]

    def test_same_kind_same_instance_no_conflict(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 1, "r")
        s.record(10, 2, "r")
        assert s.entries[10].kind is EntryKind.READ


class TestFlushAndSlicing:
    def test_flush_empties(self):
        s = CommSchedule(1)
        s.record(1, 1, "r")
        s.flush()
        assert len(s) == 0

    def test_entries_for_home_filters_and_sorts(self):
        s = CommSchedule(1)
        for b in (5, 3, 8, 2):
            s.record(b, 1, "r")
        mine = s.entries_for_home(home_of=lambda b: b % 2, node=0)
        assert [e.block for e in mine] == [2, 8]

    def test_iteration(self):
        s = CommSchedule(1)
        s.record(1, 1, "r")
        s.record(2, 2, "w")
        assert {e.block for e in s} == {1, 2}


class TestCoalescing:
    def test_empty(self):
        assert coalesce_blocks([]) == []

    def test_single(self):
        assert coalesce_blocks([5]) == [(5, 1)]

    def test_consecutive_run(self):
        assert coalesce_blocks([3, 4, 5]) == [(3, 3)]

    def test_gaps_split_runs(self):
        assert coalesce_blocks([1, 2, 4, 5, 9]) == [(1, 2), (4, 2), (9, 1)]

    def test_unsorted_and_duplicates(self):
        assert coalesce_blocks([5, 3, 4, 4, 3]) == [(3, 3)]

    @given(st.sets(st.integers(min_value=0, max_value=500)))
    def test_runs_partition_the_input(self, blocks):
        runs = coalesce_blocks(blocks)
        covered = []
        for first, count in runs:
            covered.extend(range(first, first + count))
        assert sorted(covered) == sorted(blocks)

    @given(st.sets(st.integers(min_value=0, max_value=500)))
    def test_runs_are_maximal(self, blocks):
        runs = coalesce_blocks(blocks)
        for i, (first, count) in enumerate(runs):
            # no run touches its successor
            if i + 1 < len(runs):
                assert first + count < runs[i + 1][0]

    # -- full property contract over arbitrary (duplicated, unsorted) input ----

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_runs_are_sorted_ascending(self, blocks):
        runs = coalesce_blocks(blocks)
        firsts = [first for first, _ in runs]
        assert firsts == sorted(firsts)

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_runs_are_disjoint(self, blocks):
        runs = coalesce_blocks(blocks)
        seen: set[int] = set()
        for first, count in runs:
            members = set(range(first, first + count))
            assert not (members & seen), f"run ({first},{count}) overlaps earlier runs"
            seen |= members

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_cover_is_exact_no_duplication_or_loss(self, blocks):
        runs = coalesce_blocks(blocks)
        covered: list[int] = []
        for first, count in runs:
            covered.extend(range(first, first + count))
        # every input block appears exactly once, nothing extra
        assert len(covered) == len(set(covered))
        assert set(covered) == set(blocks)

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_counts_are_positive(self, blocks):
        assert all(count >= 1 for _, count in coalesce_blocks(blocks))

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_idempotent_on_own_cover(self, blocks):
        runs = coalesce_blocks(blocks)
        cover = [b for first, count in runs for b in range(first, first + count)]
        assert coalesce_blocks(cover) == runs


class TestMigratoryRMW:
    """Read-then-write by the SAME node in one phase is migratory, not a
    conflict (conflicts involve different processors, §3.3)."""

    def test_same_node_rmw_becomes_write(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 2, "r")
        s.record(10, 2, "w")
        assert s.entries[10].kind is EntryKind.WRITE
        assert s.entries[10].writer == 2

    def test_writer_rereading_is_not_conflict(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 2, "w")
        s.record(10, 2, "r")
        assert s.entries[10].kind is EntryKind.WRITE

    def test_other_reader_still_conflicts(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 1, "r")
        s.record(10, 2, "w")  # different node writes: genuine conflict
        assert s.entries[10].kind is EntryKind.CONFLICT

    def test_writer_plus_foreign_reader_conflicts(self):
        s = CommSchedule(1)
        s.begin_instance()
        s.record(10, 2, "w")
        s.record(10, 1, "r")
        assert s.entries[10].kind is EntryKind.CONFLICT

    def test_migratory_rmw_presend_converges(self):
        """A block read-modify-written by a rotating-but-phase-stable node
        is pre-sent writable and stops missing."""
        from tests.helpers import run_one_phase, small_machine

        m, b = small_machine("predictive", n_nodes=3)
        for _ in range(4):
            m.begin_group(1)
            run_one_phase(m, {1: [("r", b), ("w", b)]})
            m.end_group()
            m.begin_group(2)
            run_one_phase(m, {2: [("r", b), ("w", b)]})
            m.end_group()
        # after warmup both sites pre-send RW grants; last 2 rounds all-hit
        assert m.stats.misses <= 5
