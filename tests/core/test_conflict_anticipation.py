"""Tests for the §3.4 extension: anticipating conflict blocks' first stable
state instead of skipping them during pre-send."""

import pytest

from repro.bench.ablations import predictive_knobs
from repro.core import EntryKind

from tests.helpers import run_one_phase, small_machine


def conflicted_workload(m, b, iters=3):
    """Block b is read by node 1 AND written by node 2 in the same phase
    (a genuine conflict), every iteration."""
    for _ in range(iters):
        m.begin_group(1)
        run_one_phase(m, {1: [("r", b)], 2: [("w", b)]})
        m.end_group()


class TestPreConflictTracking:
    def test_pre_conflict_kind_recorded(self):
        m, b = small_machine("predictive", n_nodes=3)
        m.begin_group(1)
        run_one_phase(m, {1: [("r", b)], 2: [("w", b)]})
        m.end_group()
        entry = m.protocol.schedule_for(1).entries[b]
        assert entry.kind is EntryKind.CONFLICT
        assert entry.pre_conflict_kind in (EntryKind.READ, EntryKind.WRITE)

    def test_pre_conflict_is_first_observed_kind(self):
        from repro.core.schedule import CommSchedule

        s = CommSchedule(1)
        s.begin_instance()
        s.record(5, 1, "r")
        s.record(5, 2, "w")
        assert s.entries[5].pre_conflict_kind is EntryKind.READ
        s2 = CommSchedule(1)
        s2.begin_instance()
        s2.record(5, 2, "w")
        s2.record(5, 1, "r")
        assert s2.entries[5].pre_conflict_kind is EntryKind.WRITE


class TestAnticipation:
    def test_default_skips_conflicts(self):
        m, b = small_machine("predictive", n_nodes=3)
        conflicted_workload(m, b)
        assert m.protocol.presend_blocks == 0

    def test_anticipation_presends_stable_state(self):
        with predictive_knobs(anticipate=True):
            m, b = small_machine("predictive", n_nodes=3)
            conflicted_workload(m, b)
            assert m.protocol.presend_blocks > 0

    def test_anticipation_keeps_values_coherent(self):
        """Anticipation must never violate coherence invariants."""
        from repro.tempest.tags import AccessTag

        with predictive_knobs(anticipate=True):
            m, b = small_machine("predictive", n_nodes=3)
            conflicted_workload(m, b, iters=5)
            tags = [m.nodes[n].tags.get(b) for n in range(3)]
            writers = sum(t is AccessTag.READ_WRITE for t in tags)
            readers = sum(t is AccessTag.READ_ONLY for t in tags)
            assert writers <= 1
            if writers:
                assert readers == 0
            m.protocol.directory.check_all()
            m.finish().check_conservation()

    def test_anticipation_can_help_read_mostly_conflicts(self):
        """A block overwhelmingly read but occasionally hit by a conflicting
        write benefits from anticipating READ."""
        def workload(m, b, anticipate_label):
            # iteration 0 creates the conflict; afterwards reads dominate
            m.begin_group(1)
            run_one_phase(m, {1: [("r", b)], 2: [("w", b)]})
            m.end_group()
            for _ in range(4):
                m.begin_group(2)
                run_one_phase(m, {0: [("w", b)]})
                m.end_group()
                m.begin_group(1)
                run_one_phase(m, {1: [("r", b)], 2: [("r", b)]})
                m.end_group()
            return m.stats.misses

        m1, b1 = small_machine("predictive", n_nodes=3)
        baseline = workload(m1, b1, "off")
        with predictive_knobs(anticipate=True):
            m2, b2 = small_machine("predictive", n_nodes=3)
            helped = workload(m2, b2, "on")
        assert helped <= baseline
