"""The calendar queue must dispatch in exactly the reference heap order.

Hypothesis generates scripted event programs — nested schedules, same-time
ties, cancellations (including of not-yet-dispatched same-slot events),
``until`` cutoffs, and ``max_events`` limits — and runs each program
through the reference :class:`~repro.sim.engine.Engine` and the fast
:class:`~repro.fastpath.calqueue.FastEngine`.  The observed dispatch
sequence ``(event id, now)``, final clock, dispatch counters, pending
counts, and raised errors must all be identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.calqueue import FastEngine
from repro.sim.engine import Engine
from repro.util.errors import SimulationError

#: a small time grid maximizes same-timestamp collisions (tie-break stress)
TIMES = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.5, 3.0])
DELAYS = st.sampled_from([0.0, 0.0, 0.5, 1.0, 2.0])


@st.composite
def programs(draw):
    """A program is a list of root events; each event may, when it fires,
    schedule children (relative delays) and cancel earlier events by id."""
    n_roots = draw(st.integers(min_value=1, max_value=6))
    events = []
    eid = 0
    for _ in range(n_roots):
        events.append({
            "time": draw(TIMES),
            "children": draw(st.lists(DELAYS, max_size=3)),
            "cancels": draw(st.lists(
                st.integers(min_value=0, max_value=14), max_size=2)),
        })
        eid += 1
    return events


class Script:
    """Executes one program against an engine, recording what happens."""

    def __init__(self, engine, program):
        self.engine = engine
        self.program = program
        self.log = []
        self.handles = {}
        self.next_id = len(program)

    def start(self):
        for i, spec in enumerate(self.program):
            self.handles[i] = self.engine.schedule(
                spec["time"], self._fire(i, spec))

    def _fire(self, eid, spec):
        def fn():
            self.log.append((eid, self.engine.now))
            for target in spec["cancels"]:
                ev = self.handles.get(target)
                if ev is not None:
                    ev.cancel()
            for delay in spec["children"]:
                cid = self.next_id
                self.next_id += 1
                child = {"children": [], "cancels": []}
                self.handles[cid] = self.engine.schedule_after(
                    delay, self._fire(cid, child))
        return fn


def _execute(engine_cls, program, until=None, max_events=None):
    engine = engine_cls()
    script = Script(engine, program)
    script.start()
    error = None
    try:
        engine.run(until=until, max_events=max_events)
    except SimulationError as exc:
        error = str(exc)
    return {
        "log": script.log,
        "now": engine.now,
        "dispatched": engine.total_dispatched,
        "pending": engine.pending,
        "peek": engine.peek_time(),
        "error": error,
    }


@settings(max_examples=120, deadline=None)
@given(program=programs())
def test_dispatch_order_matches_reference(program):
    assert _execute(FastEngine, program) == _execute(Engine, program)


@settings(max_examples=80, deadline=None)
@given(program=programs(), until=st.sampled_from([0.0, 1.0, 2.0, 2.5, 10.0]))
def test_until_cutoff_matches_reference(program, until):
    assert (_execute(FastEngine, program, until=until)
            == _execute(Engine, program, until=until))


@settings(max_examples=80, deadline=None)
@given(program=programs(), limit=st.integers(min_value=1, max_value=6))
def test_max_events_cutoff_matches_reference(program, limit):
    ref = _execute(Engine, program, max_events=limit)
    fast = _execute(FastEngine, program, max_events=limit)
    assert fast == ref
    if ref["error"] is not None:
        assert f"max_events={limit}" in ref["error"]


@pytest.mark.parametrize("engine_cls", [Engine, FastEngine])
def test_schedule_into_past_raises(engine_cls):
    engine = engine_cls()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda: None)


def test_fastengine_counts_like_reference_on_empty_run():
    for engine_cls in (Engine, FastEngine):
        engine = engine_cls()
        assert engine.run() == 0
        assert engine.run(until=7.0) == 0
        assert engine.now == 7.0  # idle clock advances to the cutoff
