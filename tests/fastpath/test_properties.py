"""Property tests: packed representations vs their reference twins.

Hypothesis drives random operation sequences through the packed structure
and the reference structure side by side; every observable output must
match.  The calendar-queue engine gets the same treatment in
``test_queue_properties.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.packed import NodeSet, PackedBitVector, PackedTagTable
from repro.tempest.tags import AccessTag, TagTable
from repro.util.bitvec import BitVector

WIDTH = st.integers(min_value=0, max_value=200)

# --------------------------------------------------------------------------- #
# PackedBitVector vs BitVector
# --------------------------------------------------------------------------- #


def _bitvec_ops(width):
    idx = st.integers(min_value=-2, max_value=width + 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("set"), idx),
            st.tuples(st.just("clear"), idx),
            st.tuples(st.just("test"), idx),
        ),
        max_size=30,
    )


def _observe(v):
    return (len(v), v.count(), list(v.indices()), list(v), bool(v))


@settings(max_examples=60, deadline=None)
@given(data=st.data(), width=WIDTH)
def test_bitvector_single_bit_ops(data, width):
    ref, packed = BitVector(width), PackedBitVector(width)
    for op, i in data.draw(_bitvec_ops(width)):
        ref_exc = packed_exc = None
        try:
            ref_out = getattr(ref, op)(i)
        except IndexError as e:
            ref_exc, ref_out = e, None
        try:
            packed_out = getattr(packed, op)(i)
        except IndexError as e:
            packed_exc, packed_out = e, None
        assert (ref_exc is None) == (packed_exc is None)
        assert ref_out == packed_out
    assert _observe(ref) == _observe(packed)


@settings(max_examples=60, deadline=None)
@given(width=st.integers(min_value=0, max_value=150), data=st.data())
def test_bitvector_algebra(width, data):
    bits = st.integers(min_value=0, max_value=(1 << width) - 1 if width else 0)
    a_bits, b_bits = data.draw(bits), data.draw(bits)
    ra, rb = BitVector(width, a_bits), BitVector(width, b_bits)
    pa, pb = PackedBitVector(width, a_bits), PackedBitVector(width, b_bits)
    for op in ("__or__", "__and__", "__sub__"):
        assert _observe(getattr(ra, op)(rb)) == _observe(getattr(pa, op)(pb))
    assert ra.is_subset(rb) == pa.is_subset(pb)
    assert (ra == rb) == (pa == pb)
    # in-place forms mutate identically
    ia, pia = ra.copy(), pa.copy()
    ia |= rb
    pia |= pb
    assert _observe(ia) == _observe(pia)
    ia, pia = ra.copy(), pa.copy()
    ia -= rb
    pia -= pb
    assert _observe(ia) == _observe(pia)


def test_bitvector_errors_match():
    for cls in (BitVector, PackedBitVector):
        with pytest.raises(ValueError):
            cls(-1)
        with pytest.raises(ValueError):
            cls(3, 0b1000)  # bits exceed width
        with pytest.raises(ValueError):
            cls(4) | cls(5)  # width mismatch
        with pytest.raises(IndexError):
            cls(4).set(4)
    full_r, full_p = BitVector.full(70), PackedBitVector.full(70)
    assert _observe(full_r) == _observe(full_p)
    idx_r = BitVector.from_indices(90, [0, 63, 64, 89])
    idx_p = PackedBitVector.from_indices(90, [0, 63, 64, 89])
    assert _observe(idx_r) == _observe(idx_p)


# --------------------------------------------------------------------------- #
# NodeSet vs set
# --------------------------------------------------------------------------- #

_NODE = st.integers(min_value=0, max_value=40)


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("add"), _NODE),
        st.tuples(st.just("discard"), _NODE),
        st.tuples(st.just("update"), st.lists(_NODE, max_size=5)),
        st.tuples(st.just("intersection_update"), st.lists(_NODE, max_size=5)),
        st.tuples(st.just("clear"), st.none()),
    ),
    max_size=25,
))
def test_nodeset_matches_set(ops):
    ref: set = set()
    packed = NodeSet()
    for op, arg in ops:
        if op == "clear":
            ref.clear()
            packed.clear()
        elif op == "intersection_update":
            ref.intersection_update(arg)
            packed.intersection_update(arg)
        elif op == "update":
            ref.update(arg)
            packed.update(arg)
        else:
            getattr(ref, op)(arg)
            getattr(packed, op)(arg)
        assert list(packed) == sorted(ref)  # always ascending
        assert len(packed) == len(ref)
        assert bool(packed) == bool(ref)


@settings(max_examples=60, deadline=None)
@given(a=st.lists(_NODE, max_size=8), b=st.lists(_NODE, max_size=8))
def test_nodeset_operator_algebra(a, b):
    ra, rb = set(a), set(b)
    pa, pb = NodeSet(a), NodeSet(b)
    assert sorted(pa | pb) == sorted(ra | rb)
    assert sorted(pa & pb) == sorted(ra & rb)
    assert sorted(pa - pb) == sorted(ra - rb)
    # mixed forms with plain collections (the protocols do this)
    assert sorted(pa - rb) == sorted(ra - rb)
    assert sorted(ra - pb) == sorted(ra - rb)
    assert (pa == pb) == (ra == rb)
    assert pa.copy() == pa and pa.copy() is not pa
    assert all(x in pa for x in ra)


# --------------------------------------------------------------------------- #
# PackedTagTable vs TagTable
# --------------------------------------------------------------------------- #

_BLOCK = st.integers(min_value=0, max_value=120)
_TAG = st.sampled_from(list(AccessTag))


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("set"), _BLOCK, _TAG),
        st.tuples(st.just("get"), _BLOCK, st.none()),
        st.tuples(st.just("permits"), _BLOCK, st.sampled_from(["r", "w"])),
        st.tuples(st.just("downgrade"), _BLOCK, st.none()),
        st.tuples(st.just("invalidate"), _BLOCK, st.none()),
        st.tuples(st.just("clear"), st.none(), st.none()),
        st.tuples(st.just("reserve"), _BLOCK, st.none()),
    ),
    max_size=40,
))
def test_tag_table_matches_reference(ops):
    ref, packed = TagTable(node=0), PackedTagTable(node=0)
    for op, a, b in ops:
        args = [x for x in (a, b) if x is not None]
        ref_out = getattr(ref, op)(*args)
        packed_out = getattr(packed, op)(*args)
        assert ref_out == packed_out, (op, args)
        assert len(packed) == len(ref)
    assert list(packed.items()) == sorted(ref.items())
    for tag in AccessTag:
        if tag is AccessTag.INVALID:
            continue
        assert packed.blocks_with_tag(tag) == sorted(ref.blocks_with_tag(tag))


def test_tag_table_clear_preserves_storage_identity():
    packed = PackedTagTable(node=1)
    packed.set(7, AccessTag.READ_WRITE)
    data = packed._data
    packed.clear()
    assert packed._data is data  # crash recovery relies on this
    assert packed.get(7) is AccessTag.INVALID and len(packed) == 0
