"""Regression: cancelled events must never leave a stale frontier.

``Event.cancel`` only flags the event; it stays queued.  Before the fix in
:meth:`Engine._prune_cancelled_front`, ``peek_time`` could report the time
of a cancelled head event — a time no live event would ever dispatch at —
and the replay processors' conservative horizon rule would then yield at a
phantom horizon, splitting one dispatch into two and changing the engine's
sequence allocation.  ``pending`` similarly counted cancelled garbage, so
the quiescence check at phase barriers could see a "non-empty" queue that
would never drain.  Both engines carry the contract now; both are pinned
here.
"""

from __future__ import annotations

import pytest

from repro.fastpath.calqueue import FastEngine
from repro.sim.engine import Engine

ENGINES = [Engine, FastEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_peek_skips_cancelled_head(engine_cls):
    engine = engine_cls()
    first = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    first.cancel()
    assert engine.peek_time() == 2.0
    assert engine.pending == 1


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_peek_skips_fully_cancelled_timestamp(engine_cls):
    """An all-cancelled timestamp must be dropped, not merely skipped."""
    engine = engine_cls()
    doomed = [engine.schedule(1.0, lambda: None) for _ in range(3)]
    engine.schedule(4.0, lambda: None)
    for ev in doomed:
        ev.cancel()
    assert engine.peek_time() == 4.0
    assert engine.pending == 1
    assert engine.run() == 1
    assert engine.now == 4.0


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_all_cancelled_queue_is_empty(engine_cls):
    engine = engine_cls()
    events = [engine.schedule(float(t), lambda: None) for t in (1, 2, 3)]
    for ev in events:
        ev.cancel()
    assert engine.peek_time() is None
    assert engine.pending == 0
    assert engine.run() == 0


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_cancel_during_dispatch_updates_frontier(engine_cls):
    """A callback cancelling a later event must retire it from the peek
    frontier *within the same run* (the horizon read by the next dispatch)."""
    engine = engine_cls()
    seen = []
    victim = engine.schedule(5.0, lambda: seen.append("victim"))

    def killer():
        victim.cancel()
        seen.append(("peek-after-cancel", engine.peek_time()))

    engine.schedule(1.0, killer)
    engine.schedule(7.0, lambda: seen.append("tail"))
    assert engine.run() == 2
    assert seen == [("peek-after-cancel", 7.0), "tail"]
    assert engine.now == 7.0


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_pending_prunes_cancelled_garbage(engine_cls):
    """Quiescence checks rely on ``pending`` reporting live events only."""
    engine = engine_cls()
    keep = engine.schedule(2.0, lambda: None)
    garbage = [engine.schedule(1.0, lambda: None) for _ in range(10)]
    for ev in garbage:
        ev.cancel()
    assert engine.pending == 1
    keep.cancel()
    assert engine.pending == 0
    assert engine.peek_time() is None
