"""Bench-snapshot tooling: schema round-trips and the regression gate.

The committed ``benchmarks/BENCH_*.json`` snapshots are what CI gates on,
so the tooling itself is pinned: snapshot documents must round-trip
through JSON and through :class:`~repro.obs.metrics.MetricsRegistry`, the
measurement harness must reject a diverging fast path, and the comparator
must flag real slowdowns while tolerating sub-threshold noise.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import perf
from repro.obs.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parents[2]

#: a tiny lock-step case keeps measurement tests fast (~thousands of events)
TINY = perf.BenchCase("tiny/lockstep", perf.MICROBENCH, "predictive", True,
                      32, dict(ops=400), "quick")


@pytest.fixture(scope="module")
def tiny_pairs():
    return perf.measure([TINY], repeats=1)


def test_measure_enforces_equality(tiny_pairs):
    (ref, fst), = tiny_pairs
    assert ref.wall_cycles == fst.wall_cycles
    assert ref.events == fst.events
    assert ref.events > 0


def test_snapshot_round_trips_through_json_and_metrics(tiny_pairs):
    for mode in ("baseline", "fastpath"):
        doc = perf.snapshot(tiny_pairs, mode, repeats=1)
        wire = json.loads(json.dumps(doc))  # JSON-safe end to end
        loaded = perf.load_snapshot(wire)
        assert loaded["schema"] == perf.BENCH_SCHEMA
        assert loaded["mode"] == mode
        (row,) = loaded["workloads"]
        assert row["label"] == TINY.label
        assert row["events"] > 0
        # the embedded registry round-trips through repro.obs.metrics
        reg = MetricsRegistry.from_dict(wire["metrics"])
        assert reg.to_dict() == wire["metrics"]
    fast_doc = perf.snapshot(tiny_pairs, "fastpath", repeats=1)
    assert fast_doc["workloads"][0]["speedup_sim"] > 0


def test_snapshot_rejects_bad_inputs(tiny_pairs):
    with pytest.raises(ValueError):
        perf.snapshot(tiny_pairs, "sideways", repeats=1)
    with pytest.raises(ValueError):
        perf.load_snapshot({"schema": "repro.bench/v0", "metrics": {}})


def _doc(speedups: dict[str, float]) -> dict:
    return {
        "schema": perf.BENCH_SCHEMA,
        "mode": "fastpath",
        "repeats": 1,
        "workloads": [
            {"label": label, "speedup_sim": s} for label, s in speedups.items()
        ],
        "metrics": MetricsRegistry().to_dict(),
    }


def test_gate_flags_synthetic_slowdown():
    committed = _doc({"water": 3.0, "adaptive": 2.0})
    measured = _doc({"water": 2.4, "adaptive": 1.9})  # water -20%
    problems = perf.compare_snapshots(committed, measured, tolerance=0.15)
    assert len(problems) == 1
    assert "water" in problems[0] and "3.00x -> 2.40x" in problems[0]


def test_gate_tolerates_noise_below_threshold():
    committed = _doc({"water": 3.0, "adaptive": 2.0})
    measured = _doc({"water": 2.7, "adaptive": 1.8})  # both -10%
    assert perf.compare_snapshots(committed, measured, tolerance=0.15) == []
    # ... but a tighter tolerance flags them
    assert len(perf.compare_snapshots(committed, measured, tolerance=0.05)) == 2


def test_gate_ignores_unknown_and_missing_workloads():
    committed = _doc({"water": 3.0})
    measured = _doc({"barnes": 1.0})  # new case: no baseline to gate on
    assert perf.compare_snapshots(committed, measured) == []


def test_committed_snapshots_are_valid_and_gateable():
    """The repo's own BENCH files validate, and the quick-profile labels CI
    measures are present in the committed fastpath snapshot (otherwise the
    perf gate would silently compare nothing)."""
    bench_dir = REPO_ROOT / "benchmarks"
    baseline = perf.load_snapshot(
        json.loads((bench_dir / "BENCH_baseline.json").read_text()))
    fastpath = perf.load_snapshot(
        json.loads((bench_dir / "BENCH_fastpath.json").read_text()))
    assert baseline["mode"] == "baseline"
    assert fastpath["mode"] == "fastpath"
    committed = {w["label"]: w for w in fastpath["workloads"]}
    for case in perf.table1_cases("quick"):
        assert case.label in committed
        assert committed[case.label]["speedup_sim"] > 1.0
    # fastpath and baseline rows agree on the simulated results
    base_rows = {w["label"]: w for w in baseline["workloads"]}
    for label, row in committed.items():
        assert base_rows[label]["wall_cycles"] == row["wall_cycles"]
        assert base_rows[label]["events"] == row["events"]


def test_table1_cases_cover_the_paper_matrix():
    labels = {c.label for c in perf.table1_cases("full")}
    for app in ("adaptive", "barnes", "water"):
        assert any(label.startswith(app) for label in labels)
    assert perf.MICROBENCH in labels
