"""Differential equivalence: the fast path must be bit-identical.

Every test replays the same workload through a reference machine and a
fast-path machine and requires *exact* equality of

* the full checkpoint snapshot (:func:`snapshot_machine` — engine seq and
  dispatch counters, tag tables, directory state, fault/crash controller
  state, node statistics), and
* the structured :class:`~repro.sim.stats.RunStats` content,

across all three protocols and the fault-free, faulted, and crashed
regimes, plus a seeded fuzz sweep and small real-application runs.  A run
that raises must raise identically on both paths.
"""

from __future__ import annotations

import pytest

from repro.core.factory import make_machine
from repro.faults.plan import BUNDLED_PLANS, CRASH_PLANS
from repro.recovery.checkpoint import snapshot_machine
from repro.tempest.tracefile import replay_session
from repro.verify.workload import ALL_PROTOCOLS, generate_workload

#: one representative of each fault regime the campaign distinguishes
REGIMES = ["drop", "delay", "chaos", "crash", "crash-storm"]


def _plan(name):
    if name is None:
        return None
    plan = BUNDLED_PLANS.get(name) or CRASH_PLANS[name]
    return plan


def _stats_key(stats):
    return (
        stats.wall_time,
        stats.phase_rows(),
        stats.summary_rows(),
        [vars(ns) for ns in stats.nodes],
    )


def _run_one(workload, protocol, regime, fast):
    machine = make_machine(workload.config, protocol, fast=fast)
    plan = _plan(regime)
    if plan is not None:
        machine.install_fault_plan(plan)
    stats = replay_session(workload.session, machine)
    return snapshot_machine(machine), _stats_key(stats)


def assert_equivalent(workload, protocol, regime=None):
    try:
        ref_snap, ref_stats = _run_one(workload, protocol, regime, fast=False)
    except Exception as ref_exc:  # both paths must fail identically
        with pytest.raises(type(ref_exc)) as info:
            _run_one(workload, protocol, regime, fast=True)
        assert str(info.value) == str(ref_exc)
        return
    fast_snap, fast_stats = _run_one(workload, protocol, regime, fast=True)
    assert fast_snap == ref_snap
    assert fast_stats == ref_stats


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("seed", range(2))
def test_fault_free(seed, protocol):
    assert_equivalent(generate_workload(seed), protocol)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("regime", REGIMES)
def test_fault_regimes(regime, protocol):
    for seed in (0, 1):
        assert_equivalent(generate_workload(seed), protocol, regime)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_fuzz_sweep(protocol):
    """Seeded sweep: many small generated sessions, fault-free and chaotic."""
    for seed in range(2, 8):
        workload = generate_workload(seed)
        assert_equivalent(workload, protocol)
        assert_equivalent(workload, protocol,
                          "chaos" if seed % 2 == 0 else "crash")


@pytest.mark.parametrize("app_name,kwargs", [
    ("water", dict(n=24, iterations=2, work_scale=10.0)),
    ("adaptive", dict(size=8, iterations=3, threshold=0.05, work_scale=4.0)),
])
@pytest.mark.parametrize("protocol,optimized", [
    ("stache", False), ("predictive", True),
])
def test_real_apps(app_name, kwargs, protocol, optimized):
    """Small real-application runs: stats and final machine state match."""
    import repro.apps as apps

    from repro.util.config import MachineConfig

    app = getattr(apps, app_name)
    cfg = MachineConfig(n_nodes=4, block_size=32, page_size=256)
    results = {}
    for fast in (False, True):
        machine = make_machine(cfg, protocol, fast=fast)
        env = app.build(**kwargs).run(machine, optimized=optimized)
        stats = env.finish()
        results[fast] = (
            _stats_key(stats),
            machine.engine.total_dispatched,
            machine.engine._seq,
            snapshot_machine(machine),
        )
    assert results[True] == results[False]


def test_oracle_fast_matches_reference():
    """run_workload(fast=True) observes exactly what the reference does."""
    from repro.verify.oracle import run_workload

    workload = generate_workload(3)
    for protocol in workload.protocols:
        ref = run_workload(workload, protocol)
        fst = run_workload(workload, protocol, fast=True)
        assert fst.readers == ref.readers
        assert fst.writers == ref.writers
        assert fst.image == ref.image
