"""Legacy shim: lets ``python setup.py develop`` work in offline
environments where pip's PEP-517 editable path needs the `wheel` package.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
