#!/usr/bin/env python3
"""Barnes-Hut N-body: block-size effects and the hand-optimized baseline.

Reproduces the paper's Figure-6 comparison in miniature: the predictive
protocol wins big at fine-grain (32-byte) blocks, but Barnes' excellent
spatial locality lets large (1024-byte) blocks close most of the gap, and
the hand-written SPMD/write-update baseline lands in the same near-tie —
without needing a hand-written protocol.

Also prints the compiler's directive placement: four phases, with the
center-of-mass loop's schedule hoisted (the paper's Figure 4).

Run:  python examples/barnes_nbody.py
"""

import numpy as np

from repro.apps import barnes
from repro.core import make_machine
from repro.util import MachineConfig

PARAMS = dict(n=96, iterations=3, vel_scale=1.0, dt=0.15, work_scale=5.0)
BASE = MachineConfig(n_nodes=8, page_size=1024, per_byte_cost=1.15)


def main() -> None:
    program = barnes.build(**PARAMS)
    placement = program.compile()
    print("--- compiler directive placement (paper Figure 4) ---")
    print(placement.describe())

    ref_params = {k: v for k, v in PARAMS.items() if k != "work_scale"}
    ref_pos, _ = barnes.reference(**ref_params)
    rows = []
    for label, protocol, optimized, block, variant in [
        ("C** unopt (32 B)", "stache", False, 32, "cstar"),
        ("C** opt   (32 B)", "predictive", True, 32, "cstar"),
        ("C** unopt (1 KiB)", "stache", False, 1024, "cstar"),
        ("C** opt   (1 KiB)", "predictive", True, 1024, "cstar"),
        ("SPMD+update (32 B)", "write-update", False, 32, "spmd"),
    ]:
        prog = barnes.build(variant=variant, **PARAMS)
        machine = make_machine(BASE.with_(block_size=block), protocol)
        env = prog.run(machine, optimized=optimized)
        stats = env.finish()
        err = np.abs(env.agg("bodies").data[:, :3] - ref_pos).max()
        assert err == 0.0
        rows.append((label, stats))

    fastest = min(s.wall_time for _, s in rows)
    print("\n--- five versions, values identical, times relative to fastest ---")
    for label, stats in rows:
        b = stats.figure_breakdown()
        print(f"{label:<20} {stats.wall_time / fastest:5.2f}x   "
              f"wait={b['Remote data wait']:>10,.0f}  "
              f"presend={b['Predictive protocol']:>9,.0f}  "
              f"hit={stats.hit_rate:.1%}")


if __name__ == "__main__":
    main()
