#!/usr/bin/env python3
"""Migratory data and why *static program points* matter (paper §3, §3.3).

The predictive protocol optimizes "repetitive producer-consumer or
migratory patterns" — but what it actually learns is per **directive
site**: one communication schedule per static program point, keyed by the
compiler-assigned directive.

This example makes that concrete with a software pipeline over a shared
buffer: stage p reads the buffer, transforms it, and writes it for stage
p+1 (the buffer block *migrates* through the machine every iteration).
Two structurally different programs express the same dynamic pattern:

* **rolled**: one parallel call inside a stage loop — a single directive
  site sees a *different* writer every execution, so its schedule keeps
  predicting the previous stage and pre-sends to the wrong node;
* **unrolled**: one call per stage — each site's writer is the same every
  iteration, the per-site schedules converge after one iteration, and the
  migrations are pre-sent perfectly.

The same dynamic behaviour, opposite prediction outcomes — the reason the
paper's compiler places directives at *program points*.

Run:  python examples/pipeline_migratory.py
"""

from repro.cstar.driver import Env
from repro.cstar.embedded import EmbeddedProgram, access
from repro.core import make_machine
from repro.util import MachineConfig

STAGES = 4
ITERS = 6
WIDTH = 16  # buffer elements (one block each, padded)


def build(unrolled: bool) -> EmbeddedProgram:
    def setup(env: Env) -> None:
        env.runtime.aggregate("buf", (WIDTH,), pad=4)   # one block/element
        env.runtime.aggregate("stage_data", (STAGES,), pad=4)
        env.state["stage"] = 0

    prog = EmbeddedProgram("pipeline-" + ("unrolled" if unrolled else "rolled"),
                           setup)

    def stage_body(ctx, env: Env) -> None:
        """Stage s transforms the whole buffer (runs on node s's element)."""
        s = ctx.pos[0]
        if s != env.state["stage"]:
            return  # only the current stage works this phase
        buf = env.agg("buf")
        for i in range(WIDTH):
            v = ctx.read(buf, (i,))
            ctx.charge(3)
            ctx.write(buf, (i,), v + float(s + 1))

    # the buffer accesses are unstructured reads+writes from whichever node
    # hosts the active stage
    stage_accesses = [
        access("stage_data", "r", "home"),
        access("buf", "r", "non-home"),
        access("buf", "w", "non-home"),
    ]
    prog.parallel("stage", stage_accesses, stage_body)
    if unrolled:
        for s in range(STAGES):
            prog.parallel(f"stage{s}", list(stage_accesses), stage_body)

    def set_stage(k):
        def run(env: Env) -> None:
            env.state["stage"] = k
        return run

    def next_stage(env: Env) -> None:
        env.state["stage"] = (env.state["stage"] + 1) % STAGES

    elements = lambda env: [(p,) for p in range(STAGES)]
    if unrolled:
        body = []
        for s in range(STAGES):
            body.append(prog.stmt(set_stage(s)))
            body.append(prog.call(f"stage{s}", over="stage_data",
                                  snapshot=["buf"], elements=elements))
        prog.build(prog.loop(ITERS, *body))
    else:
        prog.build(
            prog.loop(
                ITERS,
                prog.stmt(set_stage(0)),
                prog.loop(
                    STAGES,
                    prog.call("stage", over="stage_data", snapshot=["buf"],
                              elements=elements),
                    prog.stmt(next_stage),
                ),
            )
        )
    return prog


def main() -> None:
    for label, unrolled in [("rolled (one site)", False),
                            ("unrolled (site per stage)", True)]:
        prog = build(unrolled)
        machine = make_machine(
            MachineConfig(n_nodes=STAGES, page_size=512), "predictive"
        )
        env = prog.run(machine, optimized=True)
        stats = env.finish()
        sites = len(machine.protocol.schedules)
        print(f"{label:<26} directive sites={sites:<2} "
              f"misses={stats.misses:<4} hit rate={stats.hit_rate:.1%} "
              f"wall={stats.wall_time:,.0f}")
        # expected buffer value: every stage adds (s+1) to each element,
        # ITERS times: sum(1..STAGES) * ITERS
        expected = sum(range(1, STAGES + 1)) * ITERS
        assert env.agg("buf").data[0] == expected

    print("\nsame dynamic migration, opposite outcomes: per-site schedules")
    print("predict a stable writer; a rolled loop's single site cannot.")


if __name__ == "__main__":
    main()
