#!/usr/bin/env python3
"""Water molecular dynamics: a *static* repetitive pattern (paper §5.3).

Water's producer-consumer pattern never changes: molecule i's position,
written by its owner each update phase, is read by the same ~n/2 molecules
every interaction phase.  This example shows the predictive protocol's
life cycle on such a pattern:

* iteration 1 — all cold misses; the protocol records them into the two
  directives' schedules;
* iteration 2 onward — pre-send converts essentially every miss into a
  local hit, and the schedules stop growing.

It also compares against the Splash-style transparent-shared-memory
version whose private-partial merge traffic the C** formulation avoids.

Run:  python examples/water_md.py
"""

import numpy as np

from repro.apps import water
from repro.core import make_machine
from repro.util import MachineConfig

PARAMS = dict(n=64, iterations=6, work_scale=20.0)
CFG = MachineConfig(n_nodes=8, page_size=512, block_size=32)


def miss_timeline(machine) -> list[int]:
    """Per-iteration miss counts from the recorded phase boundaries."""
    # Phases alternate interactions/update; fold pairs into iterations.
    import itertools

    counts = []
    phases = machine.stats.phases
    # machine counters are cumulative; reconstruct per-phase from wall deltas
    return [round(p.wall) for p in phases]


def main() -> None:
    ref_pos, _ = water.reference(n=PARAMS["n"], iterations=PARAMS["iterations"])

    print("predictive protocol on a static repetitive pattern:")
    program = water.build(**PARAMS)
    machine = make_machine(CFG, "predictive")
    env = program.run(machine, optimized=True)
    stats = env.finish()
    assert np.abs(env.agg("pos").data[:, :3] - ref_pos).max() == 0.0

    for d, sched in sorted(machine.protocol.schedules.items()):
        adds = sched.additions_per_instance[1:]
        print(f"  directive {d}: schedule growth per iteration: {adds}"
              f"  (static pattern -> converges immediately)")
    print(f"  final hit rate {stats.hit_rate:.2%}, "
          f"pre-sent blocks: {machine.protocol.presend_blocks}")

    print("\nthree versions of the same computation:")
    for label, variant, protocol, optimized in [
        ("C** optimized", "cstar", "predictive", True),
        ("C** unoptimized", "cstar", "stache", False),
        ("Splash-style", "splash", "stache", False),
    ]:
        prog = water.build(variant=variant, **PARAMS)
        m = make_machine(CFG, protocol)
        e = prog.run(m, optimized=optimized)
        s = e.finish()
        err = np.abs(e.agg("pos").data[:, :3] - ref_pos).max()
        print(f"  {label:<16} wall={s.wall_time:>12,.0f}  "
              f"wait={s.figure_breakdown()['Remote data wait']:>11,.0f}  "
              f"value err={err:.1e}")


if __name__ == "__main__":
    main()
