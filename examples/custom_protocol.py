#!/usr/bin/env python3
"""Writing a custom coherence protocol in the teapot framework.

The paper's predictive protocol is itself "a delta over Stache" written in
Teapot.  This example shows the same extensibility at user level: a
**read-broadcast** protocol that, whenever any node fetches a block, also
pushes copies to every node that has *ever* read it (a simpler, stateless
cousin of the predictive protocol — no compiler directives needed, but it
over-shares: every historical reader gets every block forever, the
deletion problem §3.3 describes).

The example runs a repetitive multi-consumer workload under Stache, the
custom protocol, and the real predictive protocol, and prints the misses
and wall time of each.  The punchline: the reactive broadcast barely helps,
because all consumers fault in the same phase — their requests race the
pushed copies.  Only *pre-sending before the phase begins* (which needs the
compiler's directive to know where a phase begins) converts those misses
into hits; that interplay is the paper's core claim.

Run:  python examples/custom_protocol.py
"""

from repro.protocols.directory import DirEntry, DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.stache import StacheProtocol
from repro.protocols.teapot import transition
from repro.tempest.machine import Machine, PhaseTrace
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util import MachineConfig


class ReadBroadcastProtocol(StacheProtocol):
    """Stache + push to historical readers on every read fill."""

    name = "read-broadcast"

    def __init__(self, machine: Machine) -> None:
        super().__init__(machine)
        #: block -> every node that ever read it
        self.ever_readers: dict[int, set[int]] = {}

    @transition(DirState.IDLE, MK.GET_RO)
    @transition(DirState.SHARED, MK.GET_RO)
    def read_from_home(self, entry: DirEntry, msg: Message, t: float) -> None:
        readers = self.ever_readers.setdefault(entry.block, set())
        readers.add(msg.src)
        # serve the requester through the normal path ...
        self.grant_ro(entry, msg.src, t)
        # ... and push copies to everyone else who ever read this block
        for node in sorted(readers):
            if node in (msg.src, entry.home):
                continue
            if self.machine.node(node).tags.permits(entry.block, "r"):
                continue
            entry.sharers.add(node)
            entry.state = DirState.SHARED
            self.send(
                Message(MK.DATA_RO, src=entry.home, dst=node,
                        block=entry.block,
                        payload_bytes=self.config.block_size),
                t,
            )

    def cache_install(self, msg: Message, t: float) -> None:
        # pushed copies arrive unrequested (or while the node is waiting on
        # some other block): install without completing a fault
        out = self.outstanding.get(msg.dst)
        if out is None or out[1] != msg.block:
            self.machine.node(msg.dst).tags.set(
                msg.block,
                AccessTag.READ_ONLY if msg.kind == MK.DATA_RO
                else AccessTag.READ_WRITE,
            )
            return
        super().cache_install(msg, t)


def workload(machine: Machine, iterations: int = 6) -> None:
    """One producer (node 0), three consumers, repeating every iteration."""
    cfg = machine.config
    region = machine.addr_space.allocate("data", 2 * cfg.page_size,
                                         home_policy=lambda p: 0)
    first = machine.addr_space.block_of(region.base)
    blocks = list(range(first, first + 16))
    for b in blocks:
        machine.nodes[0].tags.set(b, AccessTag.READ_WRITE)
    n = cfg.n_nodes
    for it in range(iterations):
        machine.begin_group(1)
        ops = [[] for _ in range(n)]
        for consumer in (1, 2, 3):
            ops[consumer] = [("r", b) for b in blocks]
        machine.run_phase(PhaseTrace(f"consume#{it}", ops))
        machine.end_group()
        machine.begin_group(2)
        ops = [[] for _ in range(n)]
        ops[0] = [("w", b) for b in blocks]
        machine.run_phase(PhaseTrace(f"produce#{it}", ops))
        machine.end_group()


def main() -> None:
    from repro.core.predictive import PredictiveProtocol

    cfg = MachineConfig(n_nodes=4, page_size=512)
    for name, factory in [
        ("stache (write-invalidate)", StacheProtocol),
        ("read-broadcast (custom)", ReadBroadcastProtocol),
        ("predictive (the paper)", PredictiveProtocol),
    ]:
        machine = Machine(cfg, factory)
        workload(machine)
        stats = machine.finish()
        print(f"{name:<28} wall={stats.wall_time:>10,.0f}  "
              f"misses={stats.misses:>4}  hit rate={stats.hit_rate:.1%}")


if __name__ == "__main__":
    main()
