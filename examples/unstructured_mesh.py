#!/usr/bin/env python3
"""The paper's Figure 3: an unstructured bipartite mesh update in C**.

The paper's running compiler example is `update`, a parallel function over a
bipartite mesh partitioned into *primal* and *dual* sets, where each primal
element gathers from dual elements through per-element edge lists
(indirection arrays).  Its access summary is the paper's own example:

    (primal: Write access, Home), (dual: Read access, Non-Home)

This program expresses the same computation in the C** mini-language with
explicit edge/coefficient aggregates, compiles it (showing the summary the
compiler derives matches the paper's), and runs primal/dual half-sweeps
alternately — the irregular, but perfectly repetitive, pattern the
predictive protocol thrives on.

Run:  python examples/unstructured_mesh.py
"""

from repro.core import make_machine
from repro.cstar import compile_source
from repro.util import MachineConfig

# Each primal element has EDGES neighbors in the dual mesh (and vice versa);
# the edge lists live in int aggregates, so all mesh reads are indirections.
SOURCE = """
aggregate Mesh(float)[];
aggregate Edges(int)[][];
aggregate Coeff(float)[][];

// Figure 3's update: gather over this element's edge list.
// Summary: (primal: Write, Home), (dual/edges/coeff: Read, Non-Home)
parallel update(Mesh primal parallel, Mesh dual, Edges e, Coeff c, int k) {
  let acc = 0.0;
  for (j = 0; j < k; j = j + 1) {
    acc = acc + c[#0][j] * dual[e[#0][j]];
  }
  primal[#0] = 0.5 * primal[#0] + 0.5 * acc;
}

parallel seed(Mesh m parallel, float scale) {
  m[#0] = scale * (#0 % 7) * 0.1;
}

// edge j of element i connects to (i + j*j + 1) mod n: fixed but irregular
parallel wire(Edges e parallel, int n, int k) {
  for (j = 0; j < k; j = j + 1) {
    e[#0][j] = (#0 + j * j + 1) % n;
  }
}

parallel weigh(Coeff c parallel, int k) {
  for (j = 0; j < k; j = j + 1) {
    c[#0][j] = 1.0 / k;
  }
}

main() {
  let n = 256;
  let k = 8;
  Mesh primal(256);
  Mesh dual(256);
  Edges pe(256, 8);
  Edges de(256, 8);
  Coeff pc(256, 8);
  Coeff dc(256, 8);
  seed(primal, 1.0);
  seed(dual, 2.0);
  wire(pe, n, k);
  wire(de, n, k);
  weigh(pc, k);
  weigh(dc, k);
  for (it = 0; it < 8; it = it + 1) {
    update(primal, dual, pe, pc, k);
    update(dual, primal, de, dc, k);
  }
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    print("--- compiler analysis (compare with the paper's Figure 3) ---")
    summary = program.summaries["update"]
    for acc in summary:
        print(f"  {acc}")
    print()
    print(program.placement.describe())
    print()

    for label, protocol, optimized in [
        ("unoptimized", "stache", False),
        ("optimized", "predictive", True),
    ]:
        machine = make_machine(MachineConfig(n_nodes=8, page_size=512), protocol)
        env = program.run(machine, optimized=optimized)
        stats = env.finish()
        b = stats.figure_breakdown()
        print(f"{label:<12} wall={stats.wall_time:>11,.0f}  "
              f"wait={b['Remote data wait']:>10,.0f}  "
              f"hit rate={stats.hit_rate:.1%}")

    print("\nthe indirection pattern is static, so after one iteration the")
    print("schedules cover it completely and every gather is pre-sent.")


if __name__ == "__main__":
    main()
