#!/usr/bin/env python3
"""Adaptive mesh refinement under the predictive protocol (paper §5.1).

Runs the Adaptive application — red/black relaxation with quad-tree cell
refinement near the charged wall — and shows the two things the paper
highlights:

1. the *incremental* growth of communication schedules as refinement adds
   new quad-tree traffic iteration by iteration, and
2. the reduction in both remote-wait AND synchronization time (the pre-send
   phase also evens out the load imbalance refinement causes).

Run:  python examples/adaptive_mesh.py
"""

import numpy as np

from repro.apps import adaptive
from repro.core import make_machine
from repro.sim import TimeCategory
from repro.util import MachineConfig

PARAMS = dict(size=16, iterations=10, threshold=0.05, work_scale=8.0)
CFG = MachineConfig(n_nodes=8, page_size=512, block_size=32)


def main() -> None:
    print("sequential reference for validation ...")
    ref_params = {k: v for k, v in PARAMS.items() if k != "work_scale"}
    ref_mesh, ref_level, _ = adaptive.reference(**ref_params)
    print(f"  refined cells: {(ref_level > 0).sum()} "
          f"(level 2: {(ref_level == 2).sum()})")

    runs = {}
    for label, protocol, optimized in [
        ("unoptimized", "stache", False),
        ("optimized", "predictive", True),
    ]:
        program = adaptive.build(**PARAMS)
        machine = make_machine(CFG, protocol)
        env = program.run(machine, optimized=optimized)
        stats = env.finish()
        err = np.abs(env.agg("mesh").data - ref_mesh).max()
        assert err == 0.0, "simulated values must match the reference exactly"
        runs[label] = (machine, stats)
        print(f"\n{label}: wall={stats.wall_time:,.0f} cycles, "
              f"hit rate {stats.hit_rate:.1%}")
        for cat in TimeCategory:
            print(f"  {cat.value:<12} {stats.mean(cat):>12,.0f}")

    machine, _ = runs["optimized"]
    print("\nincremental schedule growth (new blocks per iteration):")
    for d, sched in sorted(machine.protocol.schedules.items()):
        growth = sched.additions_per_instance[1:]
        print(f"  directive {d}: start {growth[0] if growth else 0} blocks, "
              f"then +{growth[1:]}")

    unopt = runs["unoptimized"][1]
    opt = runs["optimized"][1]
    print(f"\nspeedup: {unopt.wall_time / opt.wall_time:.2f}x "
          f"(paper Figure 5: best-opt 1.56x over best-unopt)")
    print(f"synch time: {unopt.mean(TimeCategory.SYNCH):,.0f} -> "
          f"{opt.mean(TimeCategory.SYNCH):,.0f} cycles "
          f"(the paper's load-imbalance effect)")


if __name__ == "__main__":
    main()
