#!/usr/bin/env python3
"""Quickstart: compile a C** program and run it under two protocols.

This is the full pipeline of the paper in ~60 lines: a data-parallel C**
program (Jacobi relaxation with an explicit neighbor stencil) is compiled —
access-pattern analysis, the reaching-unstructured-accesses dataflow, and
directive placement — and then executed on a simulated 8-node DSM machine
under the plain Stache write-invalidate protocol and under the predictive
protocol driven by the compiler's directives.

Run:  python examples/quickstart.py
"""

from repro.core import make_machine
from repro.cstar import compile_source
from repro.util import MachineConfig

SOURCE = """
aggregate Grid(float)[][];

parallel init(Grid g parallel, float v) {
  g[#0][#1] = v + #0 * 0.1 + #1 * 0.01;
}

// a 4-point stencil: the neighbor reads are "unstructured" to the compiler,
// which therefore brackets each sweep with a predictive-protocol directive
parallel sweep(Grid g parallel, Grid src, int n) {
  if (#0 > 0 && #0 < n - 1 && #1 > 0 && #1 < n - 1) {
    g[#0][#1] = 0.25 * (src[#0+1][#1] + src[#0-1][#1]
                      + src[#0][#1+1] + src[#0][#1-1]);
  }
}

main() {
  let n = 16;
  Grid a(16, 16);
  Grid b(16, 16);
  init(a, 1.0);
  init(b, 1.0);
  for (i = 0; i < 6; i = i + 1) {
    sweep(a, b, n);
    sweep(b, a, n);
  }
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    print("--- what the compiler found ---")
    print(program.describe())
    print()

    results = {}
    for label, protocol, optimized in [
        ("unoptimized (Stache)", "stache", False),
        ("optimized (predictive)", "predictive", True),
    ]:
        machine = make_machine(MachineConfig(n_nodes=8, page_size=512), protocol)
        env = program.run(machine, optimized=optimized)
        stats = env.finish()
        results[label] = stats
        b = stats.figure_breakdown()
        print(f"{label}:")
        print(f"  wall time          {stats.wall_time:>12,.0f} cycles")
        print(f"  remote data wait   {b['Remote data wait']:>12,.0f}")
        print(f"  predictive phase   {b['Predictive protocol']:>12,.0f}")
        print(f"  compute+synch      {b['Compute+Synch']:>12,.0f}")
        print(f"  local hit rate     {stats.hit_rate:>12.1%}")
        print()

    base = results["unoptimized (Stache)"].wall_time
    opt = results["optimized (predictive)"].wall_time
    print(f"speedup from compiler-directed pre-sending: {base / opt:.2f}x")


if __name__ == "__main__":
    main()
