"""Figure 7: Water, 3 versions (C** unopt, C** opt, Splash)."""

from repro.bench.figures import check_fig7, fig7_water


def test_fig7_water(benchmark, report):
    fig = benchmark.pedantic(fig7_water, rounds=1, iterations=1)
    report("fig7_water", fig.render())
    check_fig7(fig)
