"""Ablations of design choices the paper's text calls out (see
repro.bench.ablations for the mapping to paper sections)."""

from repro.bench.ablations import (
    ablation_block_sweep,
    ablation_coalescing,
    ablation_flush,
    ablation_incremental,
)


def test_ablation_coalescing(benchmark, report):
    out = benchmark.pedantic(ablation_coalescing, rounds=1, iterations=1)
    report("ablation_coalescing", out)
    speed = float(out.rsplit(" ", 1)[-1].rstrip("x"))
    assert speed > 1.0  # bulk messages amortize startup costs (§3.4)


def test_ablation_incremental(benchmark, report):
    out = benchmark.pedantic(ablation_incremental, rounds=1, iterations=1)
    report("ablation_incremental", out)
    speed = float(out.rsplit(" ", 1)[-1].rstrip("x"))
    assert speed > 1.0  # schedule reuse beats per-iteration rebuild


def test_ablation_flush(benchmark, report):
    out = benchmark.pedantic(ablation_flush, rounds=1, iterations=1)
    report("ablation_flush", out)
    assert "useless" in out


def test_ablation_block_sweep(benchmark, report):
    out = benchmark.pedantic(ablation_block_sweep, rounds=1, iterations=1)
    report("ablation_block_sweep", out)
    # speedup at 32 B exceeds speedup at 256 B
    lines = [l for l in out.splitlines() if l.strip() and l.split()[0].isdigit()]
    first = float(lines[0].split()[-1])
    last = float(lines[-1].split()[-1])
    assert first > last


def test_ablation_latency_sweep(benchmark, report):
    from repro.bench.ablations import ablation_latency_sweep

    out = benchmark.pedantic(ablation_latency_sweep, rounds=1, iterations=1)
    report("ablation_latency_sweep", out)
    lines = [l for l in out.splitlines() if l.strip() and l.split()[0].isdigit()]
    speedups = [float(l.split()[-1]) for l in lines]
    # §5.4: the benefit grows with remote access latency
    assert speedups == sorted(speedups)
    assert speedups[-1] > speedups[0] * 1.2
