"""Machine-size scaling and paper-geometry spot checks (repro.bench.sweeps)."""

from repro.bench.sweeps import node_scaling, paper_geometry_fig5


def test_node_scaling(benchmark, report):
    out = benchmark.pedantic(node_scaling, rounds=1, iterations=1)
    report("sweep_node_scaling", out)
    lines = [l for l in out.splitlines() if l.strip() and l.split()[0].isdigit()]
    speedups = [float(l.split()[3]) for l in lines]
    # the predictive protocol's advantage grows with the machine
    assert speedups == sorted(speedups)
    assert all(s > 1.0 for s in speedups)


def test_paper_geometry_adaptive(benchmark, report):
    out = benchmark.pedantic(paper_geometry_fig5, rounds=1, iterations=1)
    report("sweep_paper_geometry", out)
    lines = {" ".join(l.split()[:2]): l for l in out.splitlines()
             if l.startswith(("unopt", "opt"))}

    def cycles(key):
        return float(lines[key].split()[2])

    # per-version orderings stay the paper's at 32 nodes:
    assert cycles("opt (32)") < cycles("unopt (32)")
    assert cycles("unopt (256)") < cycles("unopt (32)")  # unopt best at 256
    # predictive less effective at larger blocks
    gain32 = cycles("unopt (32)") / cycles("opt (32)")
    gain256 = cycles("unopt (256)") / cycles("opt (256)")
    assert gain32 > gain256
