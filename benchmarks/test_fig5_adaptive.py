"""Figure 5: Adaptive, 4 C** versions ({unopt, opt} x {32 B, 256 B})."""

from repro.bench.figures import check_fig5, fig5_adaptive


def test_fig5_adaptive(benchmark, report):
    fig = benchmark.pedantic(fig5_adaptive, rounds=1, iterations=1)
    report("fig5_adaptive", fig.render())
    check_fig5(fig)
