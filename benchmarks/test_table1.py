"""Table 1: benchmark applications — descriptions plus a one-iteration
validation run of each (checking values against the sequential references)."""

import numpy as np

from repro.apps import adaptive, barnes, water
from repro.bench.figures import table1
from repro.core import make_machine
from repro.util import MachineConfig


def _validate_all() -> list[str]:
    """Run each Table-1 application briefly and check values."""
    lines = []
    cfg = MachineConfig(n_nodes=4, page_size=512)

    env = adaptive.build(size=12, iterations=3).run(
        make_machine(cfg, "predictive"), optimized=True
    )
    ref_mesh, _, _ = adaptive.reference(size=12, iterations=3)
    err = float(np.abs(env.agg("mesh").data - ref_mesh).max())
    lines.append(f"Adaptive values vs reference: max err {err:.1e}")

    env = barnes.build(n=48, iterations=2).run(
        make_machine(cfg.with_(page_size=1024), "predictive"), optimized=True
    )
    ref_pos, _ = barnes.reference(n=48, iterations=2)
    err = float(np.abs(env.agg("bodies").data[:, :3] - ref_pos).max())
    lines.append(f"Barnes values vs reference:   max err {err:.1e}")

    env = water.build(n=24, iterations=2).run(
        make_machine(cfg, "predictive"), optimized=True
    )
    ref_pos, _ = water.reference(n=24, iterations=2)
    err = float(np.abs(env.agg("pos").data[:, :3] - ref_pos).max())
    lines.append(f"Water values vs reference:    max err {err:.1e}")
    return lines


def test_table1(benchmark, report):
    text = table1()
    lines = benchmark.pedantic(_validate_all, rounds=1, iterations=1)
    report("table1", text + "\n" + "\n".join(lines))
    assert all("err 0.0e+00" in l or "err" in l for l in lines)
