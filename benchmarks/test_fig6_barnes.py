"""Figure 6: Barnes, 5 versions ({unopt, opt} x {32 B, 1024 B} + SPMD)."""

from repro.bench.figures import check_fig6, fig6_barnes


def test_fig6_barnes(benchmark, report):
    fig = benchmark.pedantic(fig6_barnes, rounds=1, iterations=1)
    report("fig6_barnes", fig.render())
    check_fig6(fig)
