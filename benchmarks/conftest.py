"""Shared benchmark fixtures: print figure output past pytest's capture and
persist rendered figures under benchmarks/results/."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """report(name, text): show ``text`` on the terminal and save it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report
